package tpch

import (
	"math"
	"testing"

	"jobench/internal/query"
)

func TestGenerateShape(t *testing.T) {
	db := Generate(Config{Scale: 0.2, Seed: 3})
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "orders", "lineitem"} {
		if db.Table(name) == nil || db.Table(name).NumRows() == 0 {
			t.Fatalf("table %q missing or empty", name)
		}
	}
	if db.Table("region").NumRows() != 5 || db.Table("nation").NumRows() != 25 {
		t.Fatal("dimension sizes wrong")
	}
	// lineitem per order averages 4 (uniform 1..7).
	ratio := float64(db.Table("lineitem").NumRows()) / float64(db.Table("orders").NumRows())
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("lineitem/order = %.2f, want ~4", ratio)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReferentialIntegrity(t *testing.T) {
	db := Generate(Config{Scale: 0.1, Seed: 5})
	fks := []struct{ tbl, col, ref string }{
		{"nation", "region_id", "region"},
		{"supplier", "nation_id", "nation"},
		{"customer", "nation_id", "nation"},
		{"orders", "customer_id", "customer"},
		{"lineitem", "order_id", "orders"},
		{"lineitem", "part_id", "part"},
		{"lineitem", "supplier_id", "supplier"},
	}
	for _, fk := range fks {
		refN := int64(db.MustTable(fk.ref).NumRows())
		col := db.MustTable(fk.tbl).MustColumn(fk.col)
		for i, v := range col.Ints {
			if v < 1 || v > refN {
				t.Fatalf("%s.%s row %d: dangling %d (ref has %d rows)", fk.tbl, fk.col, i, v, refN)
			}
		}
	}
}

// TestUniformityAndIndependence verifies the property the paper relies on in
// §3.3: TPC-H attributes are uniform and independent, so multiplying
// selectivities is a good model of reality.
func TestUniformityAndIndependence(t *testing.T) {
	db := Generate(Config{Scale: 1, Seed: 7})
	li := db.MustTable("lineitem")
	ret := li.MustColumn("returnflag")
	disc := li.MustColumn("discount")
	n := li.NumRows()

	// P(returnflag = R) ~ 0.25.
	rCode, _ := ret.Code("R")
	countR := 0
	for _, v := range ret.Ints {
		if v == rCode {
			countR++
		}
	}
	pR := float64(countR) / float64(n)
	if math.Abs(pR-0.25) > 0.02 {
		t.Fatalf("P(R) = %.3f, want ~0.25", pR)
	}

	// P(R and discount=0) ~ P(R) * P(discount=0): independence.
	count0, countBoth := 0, 0
	for i := 0; i < n; i++ {
		d0 := disc.Ints[i] == 0
		if d0 {
			count0++
		}
		if d0 && ret.Ints[i] == rCode {
			countBoth++
		}
	}
	pBoth := float64(countBoth) / float64(n)
	pIndep := pR * float64(count0) / float64(n)
	if math.Abs(pBoth-pIndep) > 0.01 {
		t.Fatalf("joint %.4f vs independent %.4f: attributes not independent", pBoth, pIndep)
	}
}

func TestQueriesValidate(t *testing.T) {
	db := Generate(Config{Scale: 0.1, Seed: 1})
	qs := Queries()
	if len(qs) != 10 {
		t.Fatalf("want 10 TPC-H query families, got %d", len(qs))
	}
	seen := make(map[string]bool, len(qs))
	for _, q := range qs {
		if seen[q.ID] {
			t.Errorf("duplicate query id %s", q.ID)
		}
		seen[q.ID] = true
		if err := q.Validate(db); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
	}
	// Fig4Queries is the original 3-query subset the figure-4 report is
	// rendered from, in its historical order.
	fig4 := Fig4Queries()
	if len(fig4) != 3 || fig4[0].ID != "tpch5" || fig4[1].ID != "tpch8" || fig4[2].ID != "tpch10" {
		t.Fatalf("Fig4Queries = %v, want [tpch5 tpch8 tpch10]", ids(fig4))
	}
	// Q5 must include the customer-supplier nation cycle.
	if fig4[0].NumJoins() != 6 {
		t.Errorf("tpch5 has %d joins, want 6", fig4[0].NumJoins())
	}
}

func ids(qs []*query.Query) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.ID
	}
	return out
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Scale: 0.1, Seed: 9})
	b := Generate(Config{Scale: 0.1, Seed: 9})
	if a.Table("lineitem").NumRows() != b.Table("lineitem").NumRows() {
		t.Fatal("lineitem count differs for same seed")
	}
	ca, cb := a.MustTable("lineitem").MustColumn("part_id"), b.MustTable("lineitem").MustColumn("part_id")
	for i := range ca.Ints {
		if ca.Ints[i] != cb.Ints[i] {
			t.Fatal("values differ for same seed")
		}
	}
}
