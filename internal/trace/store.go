package trace

import (
	"sync"
	"time"
)

// SpanRecord is the JSON shape of one span in /v1/traces output. Start
// is the offset from the trace start so readers line spans up without
// parsing timestamps.
type SpanRecord struct {
	Name       string            `json:"name"`
	StartUS    int64             `json:"start_us"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Record is the JSON shape of one finished trace.
type Record struct {
	TraceID    string       `json:"trace_id"`
	Route      string       `json:"route"`
	Start      time.Time    `json:"start"`
	DurationMS float64      `json:"duration_ms"`
	Spans      []SpanRecord `json:"spans"`
}

// Snapshot renders the trace into its JSON record shape.
func (t *Trace) Snapshot() Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := Record{
		TraceID:    t.id.String(),
		Route:      t.route,
		Start:      t.start,
		DurationMS: float64(t.dur) / float64(time.Millisecond),
		Spans:      make([]SpanRecord, len(t.spans)),
	}
	for i, s := range t.spans {
		sr := SpanRecord{
			Name:       s.Name,
			StartUS:    s.Start.Sub(t.start).Microseconds(),
			DurationUS: s.Dur.Microseconds(),
		}
		if len(s.Attrs) > 0 {
			sr.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				sr.Attrs[a.Key] = a.Value
			}
		}
		rec.Spans[i] = sr
	}
	return rec
}

// Store is a fixed-capacity ring buffer of recently finished traces.
// Add evicts the oldest entry once full; Snapshot reads newest-first.
// It is safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	buf  []*Trace
	next int // next write position
	n    int // live entries
}

// DefaultStoreCapacity is the ring size processes use unless configured
// otherwise: large enough to cover the recent past under load, small
// enough that retained span slices stay in the low megabytes.
const DefaultStoreCapacity = 256

// NewStore returns a ring buffer holding up to capacity traces
// (DefaultStoreCapacity if capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{buf: make([]*Trace, capacity)}
}

// Add appends a finished trace, evicting the oldest when full.
func (s *Store) Add(t *Trace) {
	if t == nil {
		return
	}
	s.mu.Lock()
	s.buf[s.next] = t
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns the number of traces currently held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Snapshot returns the stored traces newest-first, keeping only those
// with duration >= minDur (pass 0 for all) and, when route is non-empty,
// only those whose route matches exactly.
func (s *Store) Snapshot(minDur time.Duration, route string) []Record {
	s.mu.Lock()
	traces := make([]*Trace, 0, s.n)
	for i := 1; i <= s.n; i++ {
		traces = append(traces, s.buf[(s.next-i+len(s.buf))%len(s.buf)])
	}
	s.mu.Unlock()
	out := make([]Record, 0, len(traces))
	for _, t := range traces {
		if route != "" && t.Route() != route {
			continue
		}
		if t.Duration() < minDur {
			continue
		}
		out = append(out, t.Snapshot())
	}
	return out
}
