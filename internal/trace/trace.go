// Package trace is a zero-dependency, allocation-frugal span tracer for
// the jobench request path. A Trace carries a 64-bit ID — propagated
// between processes via the X-Jobench-Trace header — and accumulates
// named spans (pool lookup, optimize, truecard DP, engine execute, …)
// with durations and key/value attributes. Code that may or may not run
// under a trace starts spans through the context helpers: with no trace
// attached every operation is a no-op on zero-valued handles, so the
// instrumented path pays one nil check and no allocations.
//
// Finished traces land in a fixed-size ring buffer (Store) that each
// process exposes over /v1/traces; see store.go.
package trace

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// Header is the HTTP header that carries the trace ID between the
// router, the replicas, and peer-fill requests.
const Header = "X-Jobench-Trace"

// ID is a 64-bit trace identifier, rendered as 16 hex digits.
type ID uint64

// NewID returns a random non-zero trace ID.
func NewID() ID {
	for {
		if id := ID(rand.Uint64()); id != 0 {
			return id
		}
	}
}

// String renders the ID as 16 lower-case hex digits.
func (id ID) String() string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses the 16-hex-digit form; ok is false for anything else
// (including the zero ID, which is reserved for "no trace").
func ParseID(s string) (ID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return ID(v), true
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int64 builds an integer-valued attribute.
func Int64(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Bool builds a boolean-valued attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(value)}
}

// Span is one finished operation inside a trace.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
	Attrs []Attr
}

// Trace accumulates the spans of one request. It is safe for concurrent
// span recording (a request may fan out — peer fill, report flights).
type Trace struct {
	id    ID
	route string
	start time.Time

	mu    sync.Mutex
	dur   time.Duration
	done  bool
	spans []Span
}

// New starts a trace for the given route under the given ID (use NewID
// when the caller is the origin of the request).
func New(id ID, route string) *Trace {
	return &Trace{id: id, route: route, start: time.Now()}
}

// ID returns the trace's identifier.
func (t *Trace) ID() ID { return t.id }

// Route returns the route label the trace was started with.
func (t *Trace) Route() string { return t.route }

// Start returns the trace's start time.
func (t *Trace) Start() time.Time { return t.start }

// Finish seals the trace's total duration (first call wins) and returns
// it. Spans recorded by stragglers after Finish are still kept — a
// detached flight may outlive the request — but the duration is the
// request's, not theirs.
func (t *Trace) Finish() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.dur = time.Since(t.start)
		t.done = true
	}
	return t.dur
}

// Duration returns the sealed duration (zero before Finish).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

func (t *Trace) addSpan(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

type ctxKey struct{}

// NewContext returns ctx with the trace attached.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// IDFromContext returns the attached trace's ID, or 0.
func IDFromContext(ctx context.Context) ID {
	if t := FromContext(ctx); t != nil {
		return t.id
	}
	return 0
}

// Running is an open span. The zero value (no trace in the context) is
// valid: End on it is a no-op, so callers never branch on tracing.
type Running struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a span on the trace in ctx; with no trace attached it
// returns a no-op handle.
func StartSpan(ctx context.Context, name string) Running {
	t := FromContext(ctx)
	if t == nil {
		return Running{}
	}
	return Running{t: t, name: name, start: time.Now()}
}

// End closes the span and records it with the given attributes.
func (r Running) End(attrs ...Attr) {
	if r.t == nil {
		return
	}
	r.t.addSpan(Span{Name: r.name, Start: r.start, Dur: time.Since(r.start), Attrs: attrs})
}

// Annotate records an instant (zero-duration) span — an event marker,
// e.g. one replan decision — on the trace in ctx.
func Annotate(ctx context.Context, name string, attrs ...Attr) {
	t := FromContext(ctx)
	if t == nil {
		return
	}
	t.addSpan(Span{Name: name, Start: time.Now(), Attrs: attrs})
}
