package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	for _, id := range []ID{1, 0xdeadbeefcafe, ^ID(0)} {
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("ID %d rendered as %q (len %d)", id, s, len(s))
		}
		got, ok := ParseID(s)
		if !ok || got != id {
			t.Fatalf("ParseID(%q) = %v, %v; want %v, true", s, got, ok, id)
		}
	}
	for _, bad := range []string{"", "xyz", "0000000000000000", "00000000000000001", "g000000000000000"} {
		if _, ok := ParseID(bad); ok {
			t.Fatalf("ParseID(%q) accepted", bad)
		}
	}
	if NewID() == 0 {
		t.Fatal("NewID returned zero")
	}
}

func TestContextCarrier(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil || IDFromContext(ctx) != 0 {
		t.Fatal("empty context carries a trace")
	}
	// No trace attached: spans are no-ops, not panics.
	StartSpan(ctx, "noop").End(String("k", "v"))
	Annotate(ctx, "noop")

	tr := New(42, "/v1/execute")
	ctx = NewContext(ctx, tr)
	if FromContext(ctx) != tr || IDFromContext(ctx) != 42 {
		t.Fatal("trace not recovered from context")
	}
	sp := StartSpan(ctx, "work")
	sp.End(Int64("units", 7), Bool("hit", true))
	Annotate(ctx, "replan", String("why", "qerr"))
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "work" || spans[1].Name != "replan" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Attrs[0].Value != "7" || spans[0].Attrs[1].Value != "true" {
		t.Fatalf("attrs = %+v", spans[0].Attrs)
	}
}

func TestFinishSealsDuration(t *testing.T) {
	tr := New(NewID(), "/v1/optimize")
	if tr.Duration() != 0 {
		t.Fatal("duration set before Finish")
	}
	d1 := tr.Finish()
	time.Sleep(time.Millisecond)
	if d2 := tr.Finish(); d2 != d1 {
		t.Fatalf("second Finish changed duration: %v -> %v", d1, d2)
	}
}

func TestStoreEvictionOrder(t *testing.T) {
	s := NewStore(3)
	for i := 1; i <= 5; i++ {
		tr := New(ID(i), fmt.Sprintf("/r%d", i))
		tr.Finish()
		s.Add(tr)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	recs := s.Snapshot(0, "")
	// Newest first; 1 and 2 evicted.
	want := []ID{5, 4, 3}
	if len(recs) != len(want) {
		t.Fatalf("Snapshot returned %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if recs[i].TraceID != w.String() {
			t.Fatalf("recs[%d].TraceID = %s, want %s", i, recs[i].TraceID, w.String())
		}
	}
}

func TestStoreFilters(t *testing.T) {
	s := NewStore(8)
	slow := New(1, "/v1/execute")
	slow.mu.Lock()
	slow.dur, slow.done = 50*time.Millisecond, true
	slow.mu.Unlock()
	fast := New(2, "/v1/optimize")
	fast.mu.Lock()
	fast.dur, fast.done = time.Millisecond, true
	fast.mu.Unlock()
	s.Add(slow)
	s.Add(fast)
	if got := s.Snapshot(10*time.Millisecond, ""); len(got) != 1 || got[0].TraceID != ID(1).String() {
		t.Fatalf("min-duration filter: %+v", got)
	}
	if got := s.Snapshot(0, "/v1/optimize"); len(got) != 1 || got[0].TraceID != ID(2).String() {
		t.Fatalf("route filter: %+v", got)
	}
	if got := s.Snapshot(0, "/nope"); len(got) != 0 {
		t.Fatalf("route filter should drop all: %+v", got)
	}
}

// TestStoreConcurrency exercises concurrent Add/Snapshot plus concurrent
// span recording on a shared trace; run under -race it is the safety
// proof for the ring and the trace mutex.
func TestStoreConcurrency(t *testing.T) {
	s := NewStore(16)
	shared := New(NewID(), "/shared")
	ctx := NewContext(context.Background(), shared)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := StartSpan(ctx, "op")
				sp.End(Int64("i", int64(i)))
				tr := New(NewID(), "/r")
				tr.Finish()
				s.Add(tr)
				if i%10 == 0 {
					s.Snapshot(0, "")
					shared.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	shared.Finish()
	if got := len(shared.Spans()); got != 800 {
		t.Fatalf("shared trace has %d spans, want 800", got)
	}
	if s.Len() != 16 {
		t.Fatalf("store Len = %d, want 16", s.Len())
	}
}
