package truecard

import (
	"fmt"
	"sync"
	"testing"

	"jobench/internal/imdb"
	"jobench/internal/job"
	"jobench/internal/query"
	"jobench/internal/storage"
)

var (
	benchOnce sync.Once
	benchDB   *storage.Database
)

func benchData(b *testing.B) *storage.Database {
	b.Helper()
	benchOnce.Do(func() {
		benchDB = imdb.Generate(imdb.Config{Scale: 0.1, Seed: 42})
	})
	return benchDB
}

// BenchmarkTruecardCompute quantifies the DP's per-level fan-out on a
// multi-join query at scale 0.1: workers=1 is the serial baseline,
// workers=0 uses every core. CI's bench-smoke step runs one iteration of
// each to catch bit-rot; run with -bench=TruecardCompute -benchmem for
// real numbers.
func BenchmarkTruecardCompute(b *testing.B) {
	db := benchData(b)
	g := query.MustBuildGraph(job.ByID("13d")) // 9 relations, 506 connected subgraphs
	for _, workers := range []int{1, 2, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compute(db, g, Options{Parallel: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
