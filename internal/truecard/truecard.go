// Package truecard computes the true cardinality of every intermediate
// result of a query: for each connected subgraph S of the join graph, the
// exact number of result tuples of joining the relations in S with all base-
// table selections applied. This replicates the paper's §2.4 methodology
// (SELECT COUNT(*) for every subexpression), including the additional
// "index intermediates": |S ⋈ R| with R's selection *discarded*, which
// index-nested-loop costing needs because the filter applies only after the
// index lookups.
//
// The computation is a level-wise dynamic program: results of size k are
// materialised as row-id tuples by probing a size-(k-1) result into a hash
// table of the extending relation; only two levels are kept in memory.
// Within a level all size-k subgraphs depend only on level k-1, so they fan
// out across Options.Parallel workers; results are identical to the serial
// path at any worker count.
package truecard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"jobench/internal/hashtab"
	"jobench/internal/parallel"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// DefaultMaxRows is the intermediate-result row limit applied when
// Options.MaxRows is zero. Callers that surface the limit in error
// messages (the jobench facade, the experiments lab) reference this
// constant instead of restating the number.
const DefaultMaxRows = 50_000_000

// Options control the computation.
type Options struct {
	// MaxSize limits the subgraph size (number of relations); 0 computes
	// every connected subgraph. The estimation-quality experiments only
	// need subexpressions of up to 7 relations (0-6 joins).
	MaxSize int
	// MaxRows aborts if an intermediate result exceeds this many tuples
	// (guards against misconfigured scales). 0 means DefaultMaxRows.
	// Sans-selection counts, which are never materialised, are bounded at
	// SansRowsFactor times this limit rather than left unbounded.
	MaxRows int
	// Parallel is the worker-pool size for the per-level fan-out (the
	// base-table filter scans and the independent size-k subgraphs of each
	// DP level). 0 means GOMAXPROCS; 1 runs fully serial. The computed
	// store is identical at any setting.
	Parallel int
}

// Store holds the computed cardinalities of one query.
type Store struct {
	G *query.Graph

	cards map[query.BitSet]float64
	sans  map[sansKey]float64
	// maxSize is the largest subgraph size computed.
	maxSize int
}

type sansKey struct {
	s query.BitSet
	r int
}

// Card returns the true cardinality of the connected subgraph s, and whether
// it was computed.
func (st *Store) Card(s query.BitSet) (float64, bool) {
	v, ok := st.cards[s]
	return v, ok
}

// MustCard returns the cardinality of s or panics; callers use it after
// computing the full query.
func (st *Store) MustCard(s query.BitSet) float64 {
	v, ok := st.cards[s]
	if !ok {
		panic(fmt.Sprintf("truecard: no cardinality for %v", s))
	}
	return v
}

// SansSelection returns |join of s with relation r's selection discarded|.
// For relations without predicates this equals Card(s); for a single
// filtered relation the stored value is its base table's row count.
func (st *Store) SansSelection(s query.BitSet, r int) (float64, bool) {
	if len(st.G.Q.Rels[r].Preds) == 0 {
		return st.Card(s)
	}
	v, ok := st.sans[sansKey{s, r}]
	return v, ok
}

// MaxSize returns the largest subgraph size computed.
func (st *Store) MaxSize() int { return st.maxSize }

// CardEntry is one (connected subgraph, true cardinality) pair of a Dump.
type CardEntry struct {
	S    query.BitSet
	Card float64
}

// SansEntry is one sans-selection cardinality of a Dump: |join of S with
// relation Rel's selection discarded|.
type SansEntry struct {
	S    query.BitSet
	Rel  int
	Card float64
}

// Dump is the portable content of a Store: everything a snapshot needs to
// rebuild it against the same join graph. Entries are sorted (cards by
// subgraph, sans by subgraph then relation) so encoding a Dump is
// deterministic.
type Dump struct {
	MaxSize int
	Cards   []CardEntry
	Sans    []SansEntry
}

// Dump extracts the store's content in deterministic order.
func (st *Store) Dump() Dump {
	d := Dump{
		MaxSize: st.maxSize,
		Cards:   make([]CardEntry, 0, len(st.cards)),
		Sans:    make([]SansEntry, 0, len(st.sans)),
	}
	for s, v := range st.cards {
		d.Cards = append(d.Cards, CardEntry{S: s, Card: v})
	}
	sort.Slice(d.Cards, func(i, j int) bool { return d.Cards[i].S < d.Cards[j].S })
	for k, v := range st.sans {
		d.Sans = append(d.Sans, SansEntry{S: k.s, Rel: k.r, Card: v})
	}
	sort.Slice(d.Sans, func(i, j int) bool {
		if d.Sans[i].S != d.Sans[j].S {
			return d.Sans[i].S < d.Sans[j].S
		}
		return d.Sans[i].Rel < d.Sans[j].Rel
	})
	return d
}

// FromDump rebuilds a Store for graph g from a Dump, validating that every
// entry fits the graph (decoders feed it untrusted input): subgraphs must
// be non-empty subsets of g's relations, sans relations in range, and
// MaxSize within [1, g.N].
func FromDump(g *query.Graph, d Dump) (*Store, error) {
	if d.MaxSize < 1 || d.MaxSize > g.N {
		return nil, fmt.Errorf("truecard: dump max size %d outside [1,%d]", d.MaxSize, g.N)
	}
	full := query.FullSet(g.N)
	st := &Store{
		G:       g,
		cards:   make(map[query.BitSet]float64, len(d.Cards)),
		sans:    make(map[sansKey]float64, len(d.Sans)),
		maxSize: d.MaxSize,
	}
	for _, e := range d.Cards {
		if e.S.Empty() || !full.Contains(e.S) {
			return nil, fmt.Errorf("truecard: dump subgraph %v outside %d-relation graph", e.S, g.N)
		}
		st.cards[e.S] = e.Card
	}
	for _, e := range d.Sans {
		if e.S.Empty() || !full.Contains(e.S) {
			return nil, fmt.Errorf("truecard: dump sans subgraph %v outside %d-relation graph", e.S, g.N)
		}
		if e.Rel < 0 || e.Rel >= g.N {
			return nil, fmt.Errorf("truecard: dump sans relation %d outside %d-relation graph", e.Rel, g.N)
		}
		st.sans[sansKey{e.S, e.Rel}] = e.Card
	}
	return st, nil
}

// NumSubgraphs returns the number of connected subgraphs computed.
func (st *Store) NumSubgraphs() int { return len(st.cards) }

// result is a materialised intermediate: for each tuple, one base-table row
// id per relation. Column-major: cols[k][i] is the row of rels[k] in tuple i.
type result struct {
	rels []int
	cols [][]int32
}

func (r *result) rows() int {
	if len(r.cols) == 0 {
		return 0
	}
	return len(r.cols[0])
}

func (r *result) colOf(rel int) []int32 {
	for k, x := range r.rels {
		if x == rel {
			return r.cols[k]
		}
	}
	panic(fmt.Sprintf("truecard: relation %d not in result %v", rel, r.rels))
}

// computer bundles the per-query state.
type computer struct {
	db   *storage.Database
	g    *query.Graph
	opts Options

	tables   []*storage.Table // per relation
	filters  []func(int) bool // compiled selections per relation
	filtered [][]int32        // selected row ids per relation

	// Join hashes per (relation, column, filtered?) — flat grouped
	// postings, not map[int64][]int32 — are built lazily with per-key
	// once-semantics, so concurrent workers extending different subgraphs
	// by the same relation share one build instead of racing.
	hashes parallel.KeyedOnce[hashKey, *hashtab.Postings]

	// bufs recycles row-id column buffers across DP levels: once level k is
	// materialised, level k-1's columns are dead and their backing arrays
	// feed level k+1. Workers pop and push concurrently.
	bufMu sync.Mutex
	bufs  [][]int32
}

// getBuf pops a recycled row-id buffer (length zero) or returns nil,
// which appends treat as an empty slice.
func (c *computer) getBuf() []int32 {
	c.bufMu.Lock()
	defer c.bufMu.Unlock()
	if n := len(c.bufs); n > 0 {
		b := c.bufs[n-1]
		c.bufs[n-1] = nil
		c.bufs = c.bufs[:n-1]
		return b
	}
	return nil
}

// putBuf returns one buffer to the pool.
func (c *computer) putBuf(b []int32) {
	if cap(b) == 0 {
		return
	}
	c.bufMu.Lock()
	c.bufs = append(c.bufs, b[:0])
	c.bufMu.Unlock()
}

// recycle returns a dead result's columns to the buffer pool.
func (c *computer) recycle(r *result) {
	if r == nil || len(r.cols) == 0 {
		return
	}
	c.bufMu.Lock()
	defer c.bufMu.Unlock()
	for _, col := range r.cols {
		if cap(col) > 0 {
			c.bufs = append(c.bufs, col[:0])
		}
	}
	r.cols = nil
}

type hashKey struct {
	rel      int
	col      string
	filtered bool
}

// subsetOut is one DP worker's output for a size-k subgraph: the
// materialised result, its cardinality, and the sans-selection counts of
// every filtered extension relation (ascending).
type subsetOut struct {
	res  *result
	card float64
	sans []sansPair
}

type sansPair struct {
	r int
	n float64
}

// Compute runs the DP for one query over db, fanning the independent
// per-subset work of each level across Options.Parallel workers.
func Compute(db *storage.Database, g *query.Graph, opts Options) (*Store, error) {
	return ComputeContext(context.Background(), db, g, opts)
}

// ComputeContext is Compute with cancellation: the probe loops poll ctx,
// so a caller sweeping many queries (Warmup) can abort the in-flight DPs
// as soon as a sibling query fails instead of letting them run out.
func ComputeContext(ctx context.Context, db *storage.Database, g *query.Graph, opts Options) (*Store, error) {
	if opts.MaxRows <= 0 {
		opts.MaxRows = DefaultMaxRows
	}
	maxSize := g.N
	if opts.MaxSize > 0 && opts.MaxSize < maxSize {
		maxSize = opts.MaxSize
	}
	c := &computer{db: db, g: g, opts: opts}
	st := &Store{
		G:       g,
		cards:   make(map[query.BitSet]float64),
		sans:    make(map[sansKey]float64),
		maxSize: maxSize,
	}

	// Level 1: apply base-table selections. Resolving tables and compiling
	// predicates is cheap and stays serial; the per-relation filter scans
	// fan out.
	c.tables = make([]*storage.Table, g.N)
	c.filters = make([]func(int) bool, g.N)
	c.filtered = make([][]int32, g.N)
	rels := make([]int, g.N)
	for i, rel := range g.Q.Rels {
		t := db.Table(rel.Table)
		if t == nil {
			return nil, fmt.Errorf("truecard: no table %q", rel.Table)
		}
		c.tables[i] = t
		f, err := query.CompileAll(rel.Preds, t)
		if err != nil {
			return nil, fmt.Errorf("truecard: %s: %v", g.Q.ID, err)
		}
		c.filters[i] = f
		rels[i] = i
	}
	scans, err := parallel.RunCells(ctx, opts.Parallel, rels,
		func(ctx context.Context, i int) ([]int32, error) {
			f := c.filters[i]
			var rows []int32
			for r := 0; r < c.tables[i].NumRows(); r++ {
				if r&ctxCheckMask == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				if f(r) {
					rows = append(rows, int32(r))
				}
			}
			return rows, nil
		})
	if err != nil {
		return nil, err
	}
	prev := make(map[query.BitSet]*result, g.N)
	for i, rows := range scans {
		c.filtered[i] = rows
		s := query.Bit(i)
		st.cards[s] = float64(len(rows))
		if len(g.Q.Rels[i].Preds) > 0 {
			st.sans[sansKey{s, i}] = float64(c.tables[i].NumRows())
		}
		prev[s] = &result{rels: []int{i}, cols: [][]int32{rows}}
	}

	// Group connected subsets by size.
	bySize := make([][]query.BitSet, g.N+1)
	g.ConnectedSubsets(func(s query.BitSet) {
		bySize[s.Count()] = append(bySize[s.Count()], s)
	})

	for size := 2; size <= maxSize; size++ {
		// Every size-k subgraph depends only on the completed level k-1
		// (prev is read-only here), so the whole level fans out; the
		// coordinator merges the outputs in deterministic input order.
		outs, err := parallel.RunCells(ctx, opts.Parallel, bySize[size],
			func(ctx context.Context, s query.BitSet) (subsetOut, error) {
				return c.computeSubset(ctx, s, prev)
			})
		if err != nil {
			return nil, err
		}
		cur := make(map[query.BitSet]*result, len(bySize[size]))
		for i, s := range bySize[size] {
			st.cards[s] = outs[i].card
			for _, sp := range outs[i].sans {
				st.sans[sansKey{s, sp.r}] = sp.n
			}
			cur[s] = outs[i].res
		}
		// Level size-1 is dead now: recycle its row-id buffers into the
		// pool feeding level size+1. Level 1 is exempt — its columns alias
		// the shared filtered-row vectors, not pooled buffers.
		if size > 2 {
			for _, res := range prev {
				c.recycle(res)
			}
		}
		prev = cur
	}
	return st, nil
}

// computeSubset materialises one size-k connected subgraph from the
// level-(k-1) results. Extending from every relation r with connected
// S\{r}: the first gives the materialised result, all filtered ones give
// the sans-selection counts.
func (c *computer) computeSubset(ctx context.Context, s query.BitSet, prev map[query.BitSet]*result) (subsetOut, error) {
	out := subsetOut{}
	found := false
	for _, r := range s.Elems() {
		rest := s.Remove(r)
		base, ok := prev[rest]
		if !ok {
			continue // rest disconnected
		}
		edges := c.g.EdgesBetween(rest, query.Bit(r))
		if len(edges) == 0 {
			continue
		}
		found = true
		if out.res == nil {
			res, err := c.join(ctx, s, base, r, edges, true)
			if err != nil {
				return subsetOut{}, err
			}
			out.res = res
			out.card = float64(res.rows())
		}
		if len(c.g.Q.Rels[r].Preds) > 0 {
			n, err := c.countJoin(ctx, s, base, r, edges, false)
			if err != nil {
				return subsetOut{}, err
			}
			out.sans = append(out.sans, sansPair{r, float64(n)})
		}
	}
	if !found {
		return subsetOut{}, fmt.Errorf("truecard: subgraph %v has no connected extension", s)
	}
	return out, nil
}

// hashOf returns (building lazily, exactly once per key even under
// concurrent workers) a hash of relation rel's column col over either the
// filtered rows or all rows, as flat grouped postings: one counting pass
// groups every row id by key in two contiguous arenas, with none of the
// per-key slice churn of the map[int64][]int32 it replaced. NULL keys are
// never inserted. The build scans rows in ascending order, so per-key row
// order is ascending — exactly what the map-of-appends produced — and the
// content is independent of which worker builds it. The build deliberately
// does not poll the context: a partially built hash must never land in the
// shared cache, and a build is at most one column scan, after which the
// caller's probe loop polls.
func (c *computer) hashOf(rel int, col string, filtered bool) *hashtab.Postings {
	return c.hashes.Get(hashKey{rel, col, filtered}, func() *hashtab.Postings {
		column := c.tables[rel].MustColumn(col)
		var keys []int64
		var vals []int32
		if filtered {
			keys = make([]int64, 0, len(c.filtered[rel]))
			vals = make([]int32, 0, len(c.filtered[rel]))
			for _, row := range c.filtered[rel] {
				if !column.IsNull(int(row)) {
					keys = append(keys, column.Ints[row])
					vals = append(vals, row)
				}
			}
		} else {
			keys = make([]int64, 0, column.Len())
			vals = make([]int32, 0, column.Len())
			for row := 0; row < column.Len(); row++ {
				if !column.IsNull(row) {
					keys = append(keys, column.Ints[row])
					vals = append(vals, int32(row))
				}
			}
		}
		return hashtab.BuildPostings(keys, vals)
	})
}

// joinCols resolves, for each edge, the probe column (on the base side) and
// the build column (on relation r).
type edgeCols struct {
	probeRel  int
	probeCol  *storage.Column
	buildCol  *storage.Column
	buildName string
}

func (c *computer) edgeCols(r int, edges []int) []edgeCols {
	out := make([]edgeCols, len(edges))
	for i, ei := range edges {
		e := c.g.Edges[ei]
		other := e.Other(r)
		j := e.Preds[0]
		// Determine which side of the predicate belongs to r. The edge may
		// carry several predicates; all are applied, the first keyed.
		var probeName, buildName string
		if c.g.Q.RelIndex(j.LeftAlias) == r {
			buildName, probeName = j.LeftCol, j.RightCol
		} else {
			buildName, probeName = j.RightCol, j.LeftCol
		}
		out[i] = edgeCols{
			probeRel:  other,
			probeCol:  c.tables[other].MustColumn(probeName),
			buildCol:  c.tables[r].MustColumn(buildName),
			buildName: buildName,
		}
	}
	return out
}

// residuals returns the extra predicates of the given edges beyond the
// primary predicate of the first edge: pairs of (base-side column of some
// relation in the result, r-side column).
type residual struct {
	baseRel int
	baseCol *storage.Column
	rCol    *storage.Column
}

func (c *computer) residuals(r int, edges []int) []residual {
	var out []residual
	for i, ei := range edges {
		e := c.g.Edges[ei]
		other := e.Other(r)
		preds := e.Preds
		if i == 0 {
			preds = preds[1:] // the first predicate of the first edge is the hash key
		}
		for _, j := range preds {
			var baseName, rName string
			if c.g.Q.RelIndex(j.LeftAlias) == r {
				rName, baseName = j.LeftCol, j.RightCol
			} else {
				rName, baseName = j.RightCol, j.LeftCol
			}
			out = append(out, residual{
				baseRel: other,
				baseCol: c.tables[other].MustColumn(baseName),
				rCol:    c.tables[r].MustColumn(rName),
			})
		}
	}
	return out
}

// ctxCheckMask throttles cancellation polling in the probe loops: the
// context is consulted every ctxCheckMask+1 probe tuples, so an aborted
// computation (a sibling worker hit an error) stops promptly without a
// per-tuple atomic load.
const ctxCheckMask = 1<<14 - 1

// emitBlockSize is the number of buffered match pairs per column-at-a-time
// emit flush.
const emitBlockSize = 1024

// join probes base against relation r on the given edges and materialises
// the combined result for subgraph s (filtered selects whether r's
// selection applies). Matches accumulate in (base ordinal, r row) pair
// buffers and are flushed column-at-a-time per block. The row limit is
// checked before a tuple is emitted, so no column ever grows past MaxRows.
func (c *computer) join(ctx context.Context, s query.BitSet, base *result, r int, edges []int, filtered bool) (*result, error) {
	ecs := c.edgeCols(r, edges)
	primary := ecs[0]
	h := c.hashOf(r, primary.buildName, filtered)
	res := c.residuals(r, edges)

	// Output layout: base relations plus r, ascending.
	outRels := make([]int, 0, len(base.rels)+1)
	outRels = append(outRels, base.rels...)
	pos := len(outRels)
	for i, x := range outRels {
		if r < x {
			pos = i
			break
		}
	}
	outRels = append(outRels, 0)
	copy(outRels[pos+1:], outRels[pos:])
	outRels[pos] = r

	// srcs aligns each output column with its base input column; the slot
	// for r itself (pos) takes the matched rows directly.
	outCols := make([][]int32, len(outRels))
	srcs := make([][]int32, len(outRels))
	for k, rel := range outRels {
		outCols[k] = c.getBuf()
		if rel != r {
			srcs[k] = base.colOf(rel)
		}
	}
	probe := base.colOf(primary.probeRel)
	n := base.rows()
	resRows := make([][]int32, len(res))
	for j := range res {
		resRows[j] = base.colOf(res[j].baseRel)
	}

	bIdx := c.getBuf() // base ordinal of each buffered match
	rBuf := c.getBuf() // matched r row of each buffered match
	flush := func() {
		if len(bIdx) == 0 {
			return
		}
		for k := range outCols {
			if k == pos {
				outCols[k] = append(outCols[k], rBuf...)
			} else {
				outCols[k] = hashtab.GatherAppend(outCols[k], srcs[k], bIdx)
			}
		}
		bIdx, rBuf = bIdx[:0], rBuf[:0]
	}

	dv, dvOK := h.DenseView()
	emitted := 0
	for i := 0; i < n; i++ {
		if i&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pRow := int(probe[i])
		if primary.probeCol.IsNull(pRow) {
			continue
		}
		key := primary.probeCol.Ints[pRow]
		// Dense keys resolve inline (surrogate keys almost always do);
		// sparse domains fall back to the hashed lookup.
		var matches []int32
		if dvOK {
			if slot := uint64(key) - uint64(dv.Min); slot < uint64(len(dv.Dense)) {
				if g := dv.Dense[slot]; g != 0 {
					matches = dv.Vals[dv.Offs[g-1]:dv.Offs[g]]
				}
			}
		} else {
			matches = h.Lookup(key)
		}
		if len(matches) == 0 {
			continue
		}
		if len(res) == 0 {
			// No residual predicates (the common case): the whole match
			// list is emitted as one run.
			if emitted+len(matches) > c.opts.MaxRows {
				return nil, fmt.Errorf("truecard: %s: intermediate %v exceeds %d rows",
					c.g.Q.ID, s, c.opts.MaxRows)
			}
			emitted += len(matches)
			rBuf = append(rBuf, matches...)
			for range matches {
				bIdx = append(bIdx, int32(i))
			}
		} else {
		match:
			for _, rRow := range matches {
				for j := range res {
					rs := &res[j]
					bRow := int(resRows[j][i])
					if rs.baseCol.IsNull(bRow) || rs.rCol.IsNull(int(rRow)) {
						continue match
					}
					if rs.baseCol.Ints[bRow] != rs.rCol.Ints[rRow] {
						continue match
					}
				}
				if emitted >= c.opts.MaxRows {
					return nil, fmt.Errorf("truecard: %s: intermediate %v exceeds %d rows",
						c.g.Q.ID, s, c.opts.MaxRows)
				}
				emitted++
				bIdx = append(bIdx, int32(i))
				rBuf = append(rBuf, rRow)
			}
		}
		if len(bIdx) >= emitBlockSize {
			flush()
		}
	}
	flush()
	c.putBuf(bIdx)
	c.putBuf(rBuf)
	for k := range outCols {
		if outCols[k] == nil {
			outCols[k] = []int32{}
		}
	}
	return &result{rels: outRels, cols: outCols}, nil
}

// SansRowsFactor is the headroom sans-selection counts get over
// Options.MaxRows: with relation r's selection discarded the count can
// legitimately dwarf every materialised intermediate, but a count this far
// past the limit signals the same misconfiguration MaxRows guards against.
// A workload that legitimately needs more raises Options.MaxRows — the
// sans bound scales with it.
const SansRowsFactor = 8

// countJoin is join without materialisation, for the sans-selection counts
// of subgraph s. It is bounded at SansRowsFactor*MaxRows — so an unbounded
// count cannot run orders of magnitude past the limit — and polls the
// context so sibling-worker failures cancel it.
func (c *computer) countJoin(ctx context.Context, s query.BitSet, base *result, r int, edges []int, filtered bool) (int64, error) {
	ecs := c.edgeCols(r, edges)
	primary := ecs[0]
	h := c.hashOf(r, primary.buildName, filtered)
	res := c.residuals(r, edges)

	probe := base.colOf(primary.probeRel)
	n := base.rows()
	resRows := make([][]int32, len(res))
	for j := range res {
		resRows[j] = base.colOf(res[j].baseRel)
	}
	limit := int64(c.opts.MaxRows)
	if limit > math.MaxInt64/SansRowsFactor {
		limit = math.MaxInt64 // effectively unbounded, don't wrap negative
	} else {
		limit *= SansRowsFactor
	}
	dv, dvOK := h.DenseView()
	var count int64
	for i := 0; i < n; i++ {
		if i&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return count, err
			}
		}
		pRow := int(probe[i])
		if primary.probeCol.IsNull(pRow) {
			continue
		}
		key := primary.probeCol.Ints[pRow]
		var matches []int32
		if dvOK {
			if slot := uint64(key) - uint64(dv.Min); slot < uint64(len(dv.Dense)) {
				if g := dv.Dense[slot]; g != 0 {
					matches = dv.Vals[dv.Offs[g-1]:dv.Offs[g]]
				}
			}
		} else {
			matches = h.Lookup(key)
		}
		if len(res) == 0 {
			// No residuals: the whole match list counts as one run. The
			// limit is still settled per match list, not per probe scan —
			// a single skewed join key can carry the whole overrun.
			count += int64(len(matches))
			if count > limit {
				return count, fmt.Errorf("truecard: %s: sans-selection count for %v (relation %d unfiltered) exceeds %d rows",
					c.g.Q.ID, s, r, limit)
			}
			continue
		}
	match:
		for _, rRow := range matches {
			for j := range res {
				rs := &res[j]
				bRow := int(resRows[j][i])
				if rs.baseCol.IsNull(bRow) || rs.rCol.IsNull(int(rRow)) {
					continue match
				}
				if rs.baseCol.Ints[bRow] != rs.rCol.Ints[rRow] {
					continue match
				}
			}
			count++
			if count > limit {
				return count, fmt.Errorf("truecard: %s: sans-selection count for %v (relation %d unfiltered) exceeds %d rows",
					c.g.Q.ID, s, r, limit)
			}
		}
	}
	return count, nil
}
