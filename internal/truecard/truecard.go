// Package truecard computes the true cardinality of every intermediate
// result of a query: for each connected subgraph S of the join graph, the
// exact number of result tuples of joining the relations in S with all base-
// table selections applied. This replicates the paper's §2.4 methodology
// (SELECT COUNT(*) for every subexpression), including the additional
// "index intermediates": |S ⋈ R| with R's selection *discarded*, which
// index-nested-loop costing needs because the filter applies only after the
// index lookups.
//
// The computation is a level-wise dynamic program: results of size k are
// materialised as row-id tuples by probing a size-(k-1) result into a hash
// table of the extending relation; only two levels are kept in memory.
// Within a level all size-k subgraphs depend only on level k-1, so they fan
// out across Options.Parallel workers; results are identical to the serial
// path at any worker count.
package truecard

import (
	"context"
	"fmt"
	"math"
	"sort"

	"jobench/internal/parallel"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// DefaultMaxRows is the intermediate-result row limit applied when
// Options.MaxRows is zero. Callers that surface the limit in error
// messages (the jobench facade, the experiments lab) reference this
// constant instead of restating the number.
const DefaultMaxRows = 50_000_000

// Options control the computation.
type Options struct {
	// MaxSize limits the subgraph size (number of relations); 0 computes
	// every connected subgraph. The estimation-quality experiments only
	// need subexpressions of up to 7 relations (0-6 joins).
	MaxSize int
	// MaxRows aborts if an intermediate result exceeds this many tuples
	// (guards against misconfigured scales). 0 means DefaultMaxRows.
	// Sans-selection counts, which are never materialised, are bounded at
	// SansRowsFactor times this limit rather than left unbounded.
	MaxRows int
	// Parallel is the worker-pool size for the per-level fan-out (the
	// base-table filter scans and the independent size-k subgraphs of each
	// DP level). 0 means GOMAXPROCS; 1 runs fully serial. The computed
	// store is identical at any setting.
	Parallel int
}

// Store holds the computed cardinalities of one query.
type Store struct {
	G *query.Graph

	cards map[query.BitSet]float64
	sans  map[sansKey]float64
	// maxSize is the largest subgraph size computed.
	maxSize int
}

type sansKey struct {
	s query.BitSet
	r int
}

// Card returns the true cardinality of the connected subgraph s, and whether
// it was computed.
func (st *Store) Card(s query.BitSet) (float64, bool) {
	v, ok := st.cards[s]
	return v, ok
}

// MustCard returns the cardinality of s or panics; callers use it after
// computing the full query.
func (st *Store) MustCard(s query.BitSet) float64 {
	v, ok := st.cards[s]
	if !ok {
		panic(fmt.Sprintf("truecard: no cardinality for %v", s))
	}
	return v
}

// SansSelection returns |join of s with relation r's selection discarded|.
// For relations without predicates this equals Card(s); for a single
// filtered relation the stored value is its base table's row count.
func (st *Store) SansSelection(s query.BitSet, r int) (float64, bool) {
	if len(st.G.Q.Rels[r].Preds) == 0 {
		return st.Card(s)
	}
	v, ok := st.sans[sansKey{s, r}]
	return v, ok
}

// MaxSize returns the largest subgraph size computed.
func (st *Store) MaxSize() int { return st.maxSize }

// CardEntry is one (connected subgraph, true cardinality) pair of a Dump.
type CardEntry struct {
	S    query.BitSet
	Card float64
}

// SansEntry is one sans-selection cardinality of a Dump: |join of S with
// relation Rel's selection discarded|.
type SansEntry struct {
	S    query.BitSet
	Rel  int
	Card float64
}

// Dump is the portable content of a Store: everything a snapshot needs to
// rebuild it against the same join graph. Entries are sorted (cards by
// subgraph, sans by subgraph then relation) so encoding a Dump is
// deterministic.
type Dump struct {
	MaxSize int
	Cards   []CardEntry
	Sans    []SansEntry
}

// Dump extracts the store's content in deterministic order.
func (st *Store) Dump() Dump {
	d := Dump{
		MaxSize: st.maxSize,
		Cards:   make([]CardEntry, 0, len(st.cards)),
		Sans:    make([]SansEntry, 0, len(st.sans)),
	}
	for s, v := range st.cards {
		d.Cards = append(d.Cards, CardEntry{S: s, Card: v})
	}
	sort.Slice(d.Cards, func(i, j int) bool { return d.Cards[i].S < d.Cards[j].S })
	for k, v := range st.sans {
		d.Sans = append(d.Sans, SansEntry{S: k.s, Rel: k.r, Card: v})
	}
	sort.Slice(d.Sans, func(i, j int) bool {
		if d.Sans[i].S != d.Sans[j].S {
			return d.Sans[i].S < d.Sans[j].S
		}
		return d.Sans[i].Rel < d.Sans[j].Rel
	})
	return d
}

// FromDump rebuilds a Store for graph g from a Dump, validating that every
// entry fits the graph (decoders feed it untrusted input): subgraphs must
// be non-empty subsets of g's relations, sans relations in range, and
// MaxSize within [1, g.N].
func FromDump(g *query.Graph, d Dump) (*Store, error) {
	if d.MaxSize < 1 || d.MaxSize > g.N {
		return nil, fmt.Errorf("truecard: dump max size %d outside [1,%d]", d.MaxSize, g.N)
	}
	full := query.FullSet(g.N)
	st := &Store{
		G:       g,
		cards:   make(map[query.BitSet]float64, len(d.Cards)),
		sans:    make(map[sansKey]float64, len(d.Sans)),
		maxSize: d.MaxSize,
	}
	for _, e := range d.Cards {
		if e.S.Empty() || !full.Contains(e.S) {
			return nil, fmt.Errorf("truecard: dump subgraph %v outside %d-relation graph", e.S, g.N)
		}
		st.cards[e.S] = e.Card
	}
	for _, e := range d.Sans {
		if e.S.Empty() || !full.Contains(e.S) {
			return nil, fmt.Errorf("truecard: dump sans subgraph %v outside %d-relation graph", e.S, g.N)
		}
		if e.Rel < 0 || e.Rel >= g.N {
			return nil, fmt.Errorf("truecard: dump sans relation %d outside %d-relation graph", e.Rel, g.N)
		}
		st.sans[sansKey{e.S, e.Rel}] = e.Card
	}
	return st, nil
}

// NumSubgraphs returns the number of connected subgraphs computed.
func (st *Store) NumSubgraphs() int { return len(st.cards) }

// result is a materialised intermediate: for each tuple, one base-table row
// id per relation. Column-major: cols[k][i] is the row of rels[k] in tuple i.
type result struct {
	rels []int
	cols [][]int32
}

func (r *result) rows() int {
	if len(r.cols) == 0 {
		return 0
	}
	return len(r.cols[0])
}

func (r *result) colOf(rel int) []int32 {
	for k, x := range r.rels {
		if x == rel {
			return r.cols[k]
		}
	}
	panic(fmt.Sprintf("truecard: relation %d not in result %v", rel, r.rels))
}

// computer bundles the per-query state.
type computer struct {
	db   *storage.Database
	g    *query.Graph
	opts Options

	tables   []*storage.Table // per relation
	filters  []func(int) bool // compiled selections per relation
	filtered [][]int32        // selected row ids per relation

	// Hash maps per (relation, column, filtered?) are built lazily with
	// per-key once-semantics, so concurrent workers extending different
	// subgraphs by the same relation share one build instead of racing.
	hashes parallel.KeyedOnce[hashKey, map[int64][]int32]
}

type hashKey struct {
	rel      int
	col      string
	filtered bool
}

// subsetOut is one DP worker's output for a size-k subgraph: the
// materialised result, its cardinality, and the sans-selection counts of
// every filtered extension relation (ascending).
type subsetOut struct {
	res  *result
	card float64
	sans []sansPair
}

type sansPair struct {
	r int
	n float64
}

// Compute runs the DP for one query over db, fanning the independent
// per-subset work of each level across Options.Parallel workers.
func Compute(db *storage.Database, g *query.Graph, opts Options) (*Store, error) {
	return ComputeContext(context.Background(), db, g, opts)
}

// ComputeContext is Compute with cancellation: the probe loops poll ctx,
// so a caller sweeping many queries (Warmup) can abort the in-flight DPs
// as soon as a sibling query fails instead of letting them run out.
func ComputeContext(ctx context.Context, db *storage.Database, g *query.Graph, opts Options) (*Store, error) {
	if opts.MaxRows <= 0 {
		opts.MaxRows = DefaultMaxRows
	}
	maxSize := g.N
	if opts.MaxSize > 0 && opts.MaxSize < maxSize {
		maxSize = opts.MaxSize
	}
	c := &computer{db: db, g: g, opts: opts}
	st := &Store{
		G:       g,
		cards:   make(map[query.BitSet]float64),
		sans:    make(map[sansKey]float64),
		maxSize: maxSize,
	}

	// Level 1: apply base-table selections. Resolving tables and compiling
	// predicates is cheap and stays serial; the per-relation filter scans
	// fan out.
	c.tables = make([]*storage.Table, g.N)
	c.filters = make([]func(int) bool, g.N)
	c.filtered = make([][]int32, g.N)
	rels := make([]int, g.N)
	for i, rel := range g.Q.Rels {
		t := db.Table(rel.Table)
		if t == nil {
			return nil, fmt.Errorf("truecard: no table %q", rel.Table)
		}
		c.tables[i] = t
		f, err := query.CompileAll(rel.Preds, t)
		if err != nil {
			return nil, fmt.Errorf("truecard: %s: %v", g.Q.ID, err)
		}
		c.filters[i] = f
		rels[i] = i
	}
	scans, err := parallel.RunCells(ctx, opts.Parallel, rels,
		func(ctx context.Context, i int) ([]int32, error) {
			f := c.filters[i]
			var rows []int32
			for r := 0; r < c.tables[i].NumRows(); r++ {
				if r&ctxCheckMask == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				if f(r) {
					rows = append(rows, int32(r))
				}
			}
			return rows, nil
		})
	if err != nil {
		return nil, err
	}
	prev := make(map[query.BitSet]*result, g.N)
	for i, rows := range scans {
		c.filtered[i] = rows
		s := query.Bit(i)
		st.cards[s] = float64(len(rows))
		if len(g.Q.Rels[i].Preds) > 0 {
			st.sans[sansKey{s, i}] = float64(c.tables[i].NumRows())
		}
		prev[s] = &result{rels: []int{i}, cols: [][]int32{rows}}
	}

	// Group connected subsets by size.
	bySize := make([][]query.BitSet, g.N+1)
	g.ConnectedSubsets(func(s query.BitSet) {
		bySize[s.Count()] = append(bySize[s.Count()], s)
	})

	for size := 2; size <= maxSize; size++ {
		// Every size-k subgraph depends only on the completed level k-1
		// (prev is read-only here), so the whole level fans out; the
		// coordinator merges the outputs in deterministic input order.
		outs, err := parallel.RunCells(ctx, opts.Parallel, bySize[size],
			func(ctx context.Context, s query.BitSet) (subsetOut, error) {
				return c.computeSubset(ctx, s, prev)
			})
		if err != nil {
			return nil, err
		}
		cur := make(map[query.BitSet]*result, len(bySize[size]))
		for i, s := range bySize[size] {
			st.cards[s] = outs[i].card
			for _, sp := range outs[i].sans {
				st.sans[sansKey{s, sp.r}] = sp.n
			}
			cur[s] = outs[i].res
		}
		prev = cur
	}
	return st, nil
}

// computeSubset materialises one size-k connected subgraph from the
// level-(k-1) results. Extending from every relation r with connected
// S\{r}: the first gives the materialised result, all filtered ones give
// the sans-selection counts.
func (c *computer) computeSubset(ctx context.Context, s query.BitSet, prev map[query.BitSet]*result) (subsetOut, error) {
	out := subsetOut{}
	found := false
	for _, r := range s.Elems() {
		rest := s.Remove(r)
		base, ok := prev[rest]
		if !ok {
			continue // rest disconnected
		}
		edges := c.g.EdgesBetween(rest, query.Bit(r))
		if len(edges) == 0 {
			continue
		}
		found = true
		if out.res == nil {
			res, err := c.join(ctx, s, base, r, edges, true)
			if err != nil {
				return subsetOut{}, err
			}
			out.res = res
			out.card = float64(res.rows())
		}
		if len(c.g.Q.Rels[r].Preds) > 0 {
			n, err := c.countJoin(ctx, s, base, r, edges, false)
			if err != nil {
				return subsetOut{}, err
			}
			out.sans = append(out.sans, sansPair{r, float64(n)})
		}
	}
	if !found {
		return subsetOut{}, fmt.Errorf("truecard: subgraph %v has no connected extension", s)
	}
	return out, nil
}

// hashOf returns (building lazily, exactly once per key even under
// concurrent workers) a hash of relation rel's column col over either the
// filtered rows or all rows. NULL keys are never inserted. The build scans
// rows in ascending order, so the map's content is independent of which
// worker builds it. The build deliberately does not poll the context: a
// partially built hash must never land in the shared cache, and a build is
// at most one column scan, after which the caller's probe loop polls.
func (c *computer) hashOf(rel int, col string, filtered bool) map[int64][]int32 {
	return c.hashes.Get(hashKey{rel, col, filtered}, func() map[int64][]int32 {
		column := c.tables[rel].MustColumn(col)
		h := make(map[int64][]int32)
		if filtered {
			for _, row := range c.filtered[rel] {
				if !column.IsNull(int(row)) {
					v := column.Ints[row]
					h[v] = append(h[v], row)
				}
			}
		} else {
			for row := 0; row < column.Len(); row++ {
				if !column.IsNull(row) {
					v := column.Ints[row]
					h[v] = append(h[v], int32(row))
				}
			}
		}
		return h
	})
}

// joinCols resolves, for each edge, the probe column (on the base side) and
// the build column (on relation r).
type edgeCols struct {
	probeRel  int
	probeCol  *storage.Column
	buildCol  *storage.Column
	buildName string
}

func (c *computer) edgeCols(r int, edges []int) []edgeCols {
	out := make([]edgeCols, len(edges))
	for i, ei := range edges {
		e := c.g.Edges[ei]
		other := e.Other(r)
		j := e.Preds[0]
		// Determine which side of the predicate belongs to r. The edge may
		// carry several predicates; all are applied, the first keyed.
		var probeName, buildName string
		if c.g.Q.RelIndex(j.LeftAlias) == r {
			buildName, probeName = j.LeftCol, j.RightCol
		} else {
			buildName, probeName = j.RightCol, j.LeftCol
		}
		out[i] = edgeCols{
			probeRel:  other,
			probeCol:  c.tables[other].MustColumn(probeName),
			buildCol:  c.tables[r].MustColumn(buildName),
			buildName: buildName,
		}
	}
	return out
}

// residuals returns the extra predicates of the given edges beyond the
// primary predicate of the first edge: pairs of (base-side column of some
// relation in the result, r-side column).
type residual struct {
	baseRel int
	baseCol *storage.Column
	rCol    *storage.Column
}

func (c *computer) residuals(r int, edges []int) []residual {
	var out []residual
	for i, ei := range edges {
		e := c.g.Edges[ei]
		other := e.Other(r)
		preds := e.Preds
		if i == 0 {
			preds = preds[1:] // the first predicate of the first edge is the hash key
		}
		for _, j := range preds {
			var baseName, rName string
			if c.g.Q.RelIndex(j.LeftAlias) == r {
				rName, baseName = j.LeftCol, j.RightCol
			} else {
				rName, baseName = j.RightCol, j.LeftCol
			}
			out = append(out, residual{
				baseRel: other,
				baseCol: c.tables[other].MustColumn(baseName),
				rCol:    c.tables[r].MustColumn(rName),
			})
		}
	}
	return out
}

// ctxCheckMask throttles cancellation polling in the probe loops: the
// context is consulted every ctxCheckMask+1 probe tuples, so an aborted
// computation (a sibling worker hit an error) stops promptly without a
// per-tuple atomic load.
const ctxCheckMask = 1<<14 - 1

// join probes base against relation r on the given edges and materialises
// the combined result for subgraph s (filtered selects whether r's
// selection applies). The row limit is checked before a tuple is emitted,
// so no column ever grows past MaxRows.
func (c *computer) join(ctx context.Context, s query.BitSet, base *result, r int, edges []int, filtered bool) (*result, error) {
	ecs := c.edgeCols(r, edges)
	primary := ecs[0]
	h := c.hashOf(r, primary.buildName, filtered)
	res := c.residuals(r, edges)

	// Output layout: base relations plus r, ascending.
	outRels := make([]int, 0, len(base.rels)+1)
	outRels = append(outRels, base.rels...)
	pos := len(outRels)
	for i, x := range outRels {
		if r < x {
			pos = i
			break
		}
	}
	outRels = append(outRels, 0)
	copy(outRels[pos+1:], outRels[pos:])
	outRels[pos] = r

	outCols := make([][]int32, len(outRels))
	probe := base.colOf(primary.probeRel)
	n := base.rows()

	baseColCache := make(map[int][]int32, len(base.rels))
	for _, rel := range base.rels {
		baseColCache[rel] = base.colOf(rel)
	}

	emitted := 0
	for i := 0; i < n; i++ {
		if i&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pRow := int(probe[i])
		if primary.probeCol.IsNull(pRow) {
			continue
		}
		key := primary.probeCol.Ints[pRow]
		matches := h[key]
		if len(matches) == 0 {
			continue
		}
	match:
		for _, rRow := range matches {
			for _, rs := range res {
				bRow := int(baseColCache[rs.baseRel][i])
				if rs.baseCol.IsNull(bRow) || rs.rCol.IsNull(int(rRow)) {
					continue match
				}
				if rs.baseCol.Ints[bRow] != rs.rCol.Ints[rRow] {
					continue match
				}
			}
			if emitted >= c.opts.MaxRows {
				return nil, fmt.Errorf("truecard: %s: intermediate %v exceeds %d rows",
					c.g.Q.ID, s, c.opts.MaxRows)
			}
			emitted++
			for k, rel := range outRels {
				if rel == r {
					outCols[k] = append(outCols[k], rRow)
				} else {
					outCols[k] = append(outCols[k], baseColCache[rel][i])
				}
			}
		}
	}
	if outCols[0] == nil {
		for k := range outCols {
			outCols[k] = []int32{}
		}
	}
	return &result{rels: outRels, cols: outCols}, nil
}

// SansRowsFactor is the headroom sans-selection counts get over
// Options.MaxRows: with relation r's selection discarded the count can
// legitimately dwarf every materialised intermediate, but a count this far
// past the limit signals the same misconfiguration MaxRows guards against.
// A workload that legitimately needs more raises Options.MaxRows — the
// sans bound scales with it.
const SansRowsFactor = 8

// countJoin is join without materialisation, for the sans-selection counts
// of subgraph s. It is bounded at SansRowsFactor*MaxRows — so an unbounded
// count cannot run orders of magnitude past the limit — and polls the
// context so sibling-worker failures cancel it.
func (c *computer) countJoin(ctx context.Context, s query.BitSet, base *result, r int, edges []int, filtered bool) (int64, error) {
	ecs := c.edgeCols(r, edges)
	primary := ecs[0]
	h := c.hashOf(r, primary.buildName, filtered)
	res := c.residuals(r, edges)

	probe := base.colOf(primary.probeRel)
	n := base.rows()
	baseColCache := make(map[int][]int32, len(base.rels))
	for _, rel := range base.rels {
		baseColCache[rel] = base.colOf(rel)
	}
	limit := int64(c.opts.MaxRows)
	if limit > math.MaxInt64/SansRowsFactor {
		limit = math.MaxInt64 // effectively unbounded, don't wrap negative
	} else {
		limit *= SansRowsFactor
	}
	var count int64
	for i := 0; i < n; i++ {
		if i&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return count, err
			}
		}
		pRow := int(probe[i])
		if primary.probeCol.IsNull(pRow) {
			continue
		}
		matches := h[primary.probeCol.Ints[pRow]]
	match:
		for _, rRow := range matches {
			for _, rs := range res {
				bRow := int(baseColCache[rs.baseRel][i])
				if rs.baseCol.IsNull(bRow) || rs.rCol.IsNull(int(rRow)) {
					continue match
				}
				if rs.baseCol.Ints[bRow] != rs.rCol.Ints[rRow] {
					continue match
				}
			}
			count++
			// Checked per match, not per probe row: a single skewed join
			// key can carry the whole overrun in one match list.
			if count > limit {
				return count, fmt.Errorf("truecard: %s: sans-selection count for %v (relation %d unfiltered) exceeds %d rows",
					c.g.Q.ID, s, r, limit)
			}
		}
	}
	return count, nil
}
