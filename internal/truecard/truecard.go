// Package truecard computes the true cardinality of every intermediate
// result of a query: for each connected subgraph S of the join graph, the
// exact number of result tuples of joining the relations in S with all base-
// table selections applied. This replicates the paper's §2.4 methodology
// (SELECT COUNT(*) for every subexpression), including the additional
// "index intermediates": |S ⋈ R| with R's selection *discarded*, which
// index-nested-loop costing needs because the filter applies only after the
// index lookups.
//
// The computation is a level-wise dynamic program: results of size k are
// materialised as row-id tuples by probing a size-(k-1) result into a hash
// table of the extending relation; only two levels are kept in memory.
package truecard

import (
	"fmt"
	"sort"

	"jobench/internal/query"
	"jobench/internal/storage"
)

// DefaultMaxRows is the intermediate-result row limit applied when
// Options.MaxRows is zero. Callers that surface the limit in error
// messages (the jobench facade, the experiments lab) reference this
// constant instead of restating the number.
const DefaultMaxRows = 50_000_000

// Options control the computation.
type Options struct {
	// MaxSize limits the subgraph size (number of relations); 0 computes
	// every connected subgraph. The estimation-quality experiments only
	// need subexpressions of up to 7 relations (0-6 joins).
	MaxSize int
	// MaxRows aborts if an intermediate result exceeds this many tuples
	// (guards against misconfigured scales). 0 means DefaultMaxRows.
	MaxRows int
}

// Store holds the computed cardinalities of one query.
type Store struct {
	G *query.Graph

	cards map[query.BitSet]float64
	sans  map[sansKey]float64
	// maxSize is the largest subgraph size computed.
	maxSize int
}

type sansKey struct {
	s query.BitSet
	r int
}

// Card returns the true cardinality of the connected subgraph s, and whether
// it was computed.
func (st *Store) Card(s query.BitSet) (float64, bool) {
	v, ok := st.cards[s]
	return v, ok
}

// MustCard returns the cardinality of s or panics; callers use it after
// computing the full query.
func (st *Store) MustCard(s query.BitSet) float64 {
	v, ok := st.cards[s]
	if !ok {
		panic(fmt.Sprintf("truecard: no cardinality for %v", s))
	}
	return v
}

// SansSelection returns |join of s with relation r's selection discarded|.
// For relations without predicates this equals Card(s).
func (st *Store) SansSelection(s query.BitSet, r int) (float64, bool) {
	if len(st.G.Q.Rels[r].Preds) == 0 {
		return st.Card(s)
	}
	if s.Single() {
		// A single unfiltered relation is just the base table.
		v, ok := st.sans[sansKey{s, r}]
		return v, ok
	}
	v, ok := st.sans[sansKey{s, r}]
	return v, ok
}

// MaxSize returns the largest subgraph size computed.
func (st *Store) MaxSize() int { return st.maxSize }

// CardEntry is one (connected subgraph, true cardinality) pair of a Dump.
type CardEntry struct {
	S    query.BitSet
	Card float64
}

// SansEntry is one sans-selection cardinality of a Dump: |join of S with
// relation Rel's selection discarded|.
type SansEntry struct {
	S    query.BitSet
	Rel  int
	Card float64
}

// Dump is the portable content of a Store: everything a snapshot needs to
// rebuild it against the same join graph. Entries are sorted (cards by
// subgraph, sans by subgraph then relation) so encoding a Dump is
// deterministic.
type Dump struct {
	MaxSize int
	Cards   []CardEntry
	Sans    []SansEntry
}

// Dump extracts the store's content in deterministic order.
func (st *Store) Dump() Dump {
	d := Dump{
		MaxSize: st.maxSize,
		Cards:   make([]CardEntry, 0, len(st.cards)),
		Sans:    make([]SansEntry, 0, len(st.sans)),
	}
	for s, v := range st.cards {
		d.Cards = append(d.Cards, CardEntry{S: s, Card: v})
	}
	sort.Slice(d.Cards, func(i, j int) bool { return d.Cards[i].S < d.Cards[j].S })
	for k, v := range st.sans {
		d.Sans = append(d.Sans, SansEntry{S: k.s, Rel: k.r, Card: v})
	}
	sort.Slice(d.Sans, func(i, j int) bool {
		if d.Sans[i].S != d.Sans[j].S {
			return d.Sans[i].S < d.Sans[j].S
		}
		return d.Sans[i].Rel < d.Sans[j].Rel
	})
	return d
}

// FromDump rebuilds a Store for graph g from a Dump, validating that every
// entry fits the graph (decoders feed it untrusted input): subgraphs must
// be non-empty subsets of g's relations, sans relations in range, and
// MaxSize within [1, g.N].
func FromDump(g *query.Graph, d Dump) (*Store, error) {
	if d.MaxSize < 1 || d.MaxSize > g.N {
		return nil, fmt.Errorf("truecard: dump max size %d outside [1,%d]", d.MaxSize, g.N)
	}
	full := query.FullSet(g.N)
	st := &Store{
		G:       g,
		cards:   make(map[query.BitSet]float64, len(d.Cards)),
		sans:    make(map[sansKey]float64, len(d.Sans)),
		maxSize: d.MaxSize,
	}
	for _, e := range d.Cards {
		if e.S.Empty() || !full.Contains(e.S) {
			return nil, fmt.Errorf("truecard: dump subgraph %v outside %d-relation graph", e.S, g.N)
		}
		st.cards[e.S] = e.Card
	}
	for _, e := range d.Sans {
		if e.S.Empty() || !full.Contains(e.S) {
			return nil, fmt.Errorf("truecard: dump sans subgraph %v outside %d-relation graph", e.S, g.N)
		}
		if e.Rel < 0 || e.Rel >= g.N {
			return nil, fmt.Errorf("truecard: dump sans relation %d outside %d-relation graph", e.Rel, g.N)
		}
		st.sans[sansKey{e.S, e.Rel}] = e.Card
	}
	return st, nil
}

// NumSubgraphs returns the number of connected subgraphs computed.
func (st *Store) NumSubgraphs() int { return len(st.cards) }

// result is a materialised intermediate: for each tuple, one base-table row
// id per relation. Column-major: cols[k][i] is the row of rels[k] in tuple i.
type result struct {
	rels []int
	cols [][]int32
}

func (r *result) rows() int {
	if len(r.cols) == 0 {
		return 0
	}
	return len(r.cols[0])
}

func (r *result) colOf(rel int) []int32 {
	for k, x := range r.rels {
		if x == rel {
			return r.cols[k]
		}
	}
	panic(fmt.Sprintf("truecard: relation %d not in result %v", rel, r.rels))
}

// computer bundles the per-query state.
type computer struct {
	db   *storage.Database
	g    *query.Graph
	opts Options

	tables   []*storage.Table // per relation
	filters  []func(int) bool // compiled selections per relation
	filtered [][]int32        // selected row ids per relation

	// Hash maps per (relation, column, filtered?) are built lazily.
	hashes map[hashKey]map[int64][]int32
}

type hashKey struct {
	rel      int
	col      string
	filtered bool
}

// Compute runs the DP for one query over db.
func Compute(db *storage.Database, g *query.Graph, opts Options) (*Store, error) {
	if opts.MaxRows <= 0 {
		opts.MaxRows = DefaultMaxRows
	}
	maxSize := g.N
	if opts.MaxSize > 0 && opts.MaxSize < maxSize {
		maxSize = opts.MaxSize
	}
	c := &computer{
		db:     db,
		g:      g,
		opts:   opts,
		hashes: make(map[hashKey]map[int64][]int32),
	}
	st := &Store{
		G:       g,
		cards:   make(map[query.BitSet]float64),
		sans:    make(map[sansKey]float64),
		maxSize: maxSize,
	}

	// Level 1: apply base-table selections.
	c.tables = make([]*storage.Table, g.N)
	c.filters = make([]func(int) bool, g.N)
	c.filtered = make([][]int32, g.N)
	prev := make(map[query.BitSet]*result, g.N)
	for i, rel := range g.Q.Rels {
		t := db.Table(rel.Table)
		if t == nil {
			return nil, fmt.Errorf("truecard: no table %q", rel.Table)
		}
		c.tables[i] = t
		f, err := query.CompileAll(rel.Preds, t)
		if err != nil {
			return nil, fmt.Errorf("truecard: %s: %v", g.Q.ID, err)
		}
		c.filters[i] = f
		var rows []int32
		for r := 0; r < t.NumRows(); r++ {
			if f(r) {
				rows = append(rows, int32(r))
			}
		}
		c.filtered[i] = rows
		s := query.Bit(i)
		st.cards[s] = float64(len(rows))
		if len(rel.Preds) > 0 {
			st.sans[sansKey{s, i}] = float64(t.NumRows())
		}
		prev[s] = &result{rels: []int{i}, cols: [][]int32{rows}}
	}

	// Group connected subsets by size.
	bySize := make([][]query.BitSet, g.N+1)
	g.ConnectedSubsets(func(s query.BitSet) {
		bySize[s.Count()] = append(bySize[s.Count()], s)
	})

	for size := 2; size <= maxSize; size++ {
		cur := make(map[query.BitSet]*result, len(bySize[size]))
		for _, s := range bySize[size] {
			var materialised *result
			// Extend from every relation r with connected S\{r}: the first
			// gives us the materialised result, all give the sans counts.
			var lastErr error
			found := false
			for _, r := range s.Elems() {
				rest := s.Remove(r)
				base, ok := prev[rest]
				if !ok {
					continue // rest disconnected
				}
				edges := c.g.EdgesBetween(rest, query.Bit(r))
				if len(edges) == 0 {
					continue
				}
				found = true
				if materialised == nil {
					res, err := c.join(base, r, edges, true)
					if err != nil {
						lastErr = err
						break
					}
					materialised = res
					st.cards[s] = float64(res.rows())
				}
				if len(c.g.Q.Rels[r].Preds) > 0 {
					n := c.countJoin(base, r, edges, false)
					st.sans[sansKey{s, r}] = float64(n)
				}
			}
			if lastErr != nil {
				return nil, lastErr
			}
			if !found {
				return nil, fmt.Errorf("truecard: subgraph %v has no connected extension", s)
			}
			cur[s] = materialised
		}
		prev = cur
	}
	return st, nil
}

// hashOf returns (building lazily) a hash of relation rel's column col over
// either the filtered rows or all rows. NULL keys are never inserted.
func (c *computer) hashOf(rel int, col string, filtered bool) map[int64][]int32 {
	key := hashKey{rel, col, filtered}
	if h, ok := c.hashes[key]; ok {
		return h
	}
	column := c.tables[rel].MustColumn(col)
	h := make(map[int64][]int32)
	if filtered {
		for _, row := range c.filtered[rel] {
			if !column.IsNull(int(row)) {
				v := column.Ints[row]
				h[v] = append(h[v], row)
			}
		}
	} else {
		for row := 0; row < column.Len(); row++ {
			if !column.IsNull(row) {
				v := column.Ints[row]
				h[v] = append(h[v], int32(row))
			}
		}
	}
	c.hashes[key] = h
	return h
}

// joinCols resolves, for each edge, the probe column (on the base side) and
// the build column (on relation r).
type edgeCols struct {
	probeRel  int
	probeCol  *storage.Column
	buildCol  *storage.Column
	buildName string
}

func (c *computer) edgeCols(r int, edges []int) []edgeCols {
	out := make([]edgeCols, len(edges))
	for i, ei := range edges {
		e := c.g.Edges[ei]
		other := e.Other(r)
		j := e.Preds[0]
		// Determine which side of the predicate belongs to r. The edge may
		// carry several predicates; all are applied, the first keyed.
		var probeName, buildName string
		if c.g.Q.RelIndex(j.LeftAlias) == r {
			buildName, probeName = j.LeftCol, j.RightCol
		} else {
			buildName, probeName = j.RightCol, j.LeftCol
		}
		out[i] = edgeCols{
			probeRel:  other,
			probeCol:  c.tables[other].MustColumn(probeName),
			buildCol:  c.tables[r].MustColumn(buildName),
			buildName: buildName,
		}
	}
	return out
}

// residuals returns the extra predicates of the given edges beyond the
// primary predicate of the first edge: pairs of (base-side column of some
// relation in the result, r-side column).
type residual struct {
	baseRel int
	baseCol *storage.Column
	rCol    *storage.Column
}

func (c *computer) residuals(r int, edges []int) []residual {
	var out []residual
	for i, ei := range edges {
		e := c.g.Edges[ei]
		other := e.Other(r)
		preds := e.Preds
		if i == 0 {
			preds = preds[1:] // the first predicate of the first edge is the hash key
		}
		for _, j := range preds {
			var baseName, rName string
			if c.g.Q.RelIndex(j.LeftAlias) == r {
				rName, baseName = j.LeftCol, j.RightCol
			} else {
				rName, baseName = j.RightCol, j.LeftCol
			}
			out = append(out, residual{
				baseRel: other,
				baseCol: c.tables[other].MustColumn(baseName),
				rCol:    c.tables[r].MustColumn(rName),
			})
		}
	}
	return out
}

// join probes base against relation r on the given edges and materialises
// the combined result (filtered selects whether r's selection applies).
func (c *computer) join(base *result, r int, edges []int, filtered bool) (*result, error) {
	ecs := c.edgeCols(r, edges)
	primary := ecs[0]
	h := c.hashOf(r, primary.buildName, filtered)
	res := c.residuals(r, edges)

	// Output layout: base relations plus r, ascending.
	outRels := make([]int, 0, len(base.rels)+1)
	outRels = append(outRels, base.rels...)
	pos := len(outRels)
	for i, x := range outRels {
		if r < x {
			pos = i
			break
		}
	}
	outRels = append(outRels, 0)
	copy(outRels[pos+1:], outRels[pos:])
	outRels[pos] = r

	outCols := make([][]int32, len(outRels))
	probe := base.colOf(primary.probeRel)
	n := base.rows()

	baseColCache := make(map[int][]int32, len(base.rels))
	for _, rel := range base.rels {
		baseColCache[rel] = base.colOf(rel)
	}

	for i := 0; i < n; i++ {
		pRow := int(probe[i])
		if primary.probeCol.IsNull(pRow) {
			continue
		}
		key := primary.probeCol.Ints[pRow]
		matches := h[key]
		if len(matches) == 0 {
			continue
		}
	match:
		for _, rRow := range matches {
			for _, rs := range res {
				bRow := int(baseColCache[rs.baseRel][i])
				if rs.baseCol.IsNull(bRow) || rs.rCol.IsNull(int(rRow)) {
					continue match
				}
				if rs.baseCol.Ints[bRow] != rs.rCol.Ints[rRow] {
					continue match
				}
			}
			// Emit tuple.
			for k, rel := range outRels {
				if rel == r {
					outCols[k] = append(outCols[k], rRow)
				} else {
					outCols[k] = append(outCols[k], baseColCache[rel][i])
				}
			}
			if len(outCols[0]) > c.opts.MaxRows {
				return nil, fmt.Errorf("truecard: %s: intermediate %v exceeds %d rows",
					c.g.Q.ID, query.BitSet(0), c.opts.MaxRows)
			}
		}
	}
	if outCols[0] == nil {
		for k := range outCols {
			outCols[k] = []int32{}
		}
	}
	return &result{rels: outRels, cols: outCols}, nil
}

// countJoin is join without materialisation, for the sans-selection counts.
func (c *computer) countJoin(base *result, r int, edges []int, filtered bool) int64 {
	ecs := c.edgeCols(r, edges)
	primary := ecs[0]
	h := c.hashOf(r, primary.buildName, filtered)
	res := c.residuals(r, edges)

	probe := base.colOf(primary.probeRel)
	n := base.rows()
	baseColCache := make(map[int][]int32, len(base.rels))
	for _, rel := range base.rels {
		baseColCache[rel] = base.colOf(rel)
	}
	var count int64
	for i := 0; i < n; i++ {
		pRow := int(probe[i])
		if primary.probeCol.IsNull(pRow) {
			continue
		}
		matches := h[primary.probeCol.Ints[pRow]]
	match:
		for _, rRow := range matches {
			for _, rs := range res {
				bRow := int(baseColCache[rs.baseRel][i])
				if rs.baseCol.IsNull(bRow) || rs.rCol.IsNull(int(rRow)) {
					continue match
				}
				if rs.baseCol.Ints[bRow] != rs.rCol.Ints[rRow] {
					continue match
				}
			}
			count++
		}
	}
	return count
}
