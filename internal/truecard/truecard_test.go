package truecard

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"jobench/internal/imdb"
	"jobench/internal/job"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// bruteForce counts the join result of subgraph s by nested loops over the
// base tables, the reference implementation for correctness tests.
func bruteForce(db *storage.Database, g *query.Graph, s query.BitSet) int64 {
	rels := s.Elems()
	tables := make([]*storage.Table, len(rels))
	filters := make([]func(int) bool, len(rels))
	for i, r := range rels {
		tables[i] = db.MustTable(g.Q.Rels[r].Table)
		f, err := query.CompileAll(g.Q.Rels[r].Preds, tables[i])
		if err != nil {
			panic(err)
		}
		filters[i] = f
	}
	pos := make(map[int]int, len(rels))
	for i, r := range rels {
		pos[r] = i
	}
	var edges []query.Join
	for _, ei := range g.EdgesWithin(s) {
		edges = append(edges, g.Edges[ei].Preds...)
	}
	var count int64
	rows := make([]int, len(rels))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(rels) {
			for _, j := range edges {
				li, ri := pos[g.Q.RelIndex(j.LeftAlias)], pos[g.Q.RelIndex(j.RightAlias)]
				lc := tables[li].MustColumn(j.LeftCol)
				rc := tables[ri].MustColumn(j.RightCol)
				if lc.IsNull(rows[li]) || rc.IsNull(rows[ri]) {
					return
				}
				if lc.Ints[rows[li]] != rc.Ints[rows[ri]] {
					return
				}
			}
			count++
			return
		}
		for r := 0; r < tables[depth].NumRows(); r++ {
			if !filters[depth](r) {
				continue
			}
			rows[depth] = r
			rec(depth + 1)
		}
	}
	rec(0)
	return count
}

// tinyDB builds a 3-table star with known cardinalities.
func tinyDB() (*storage.Database, *query.Graph) {
	db := storage.NewDatabase()
	tid := storage.NewIntColumn("id")
	tv := storage.NewIntColumn("v")
	for i := int64(1); i <= 10; i++ {
		tid.AppendInt(i)
		tv.AppendInt(i % 3)
	}
	db.Add(storage.NewTable("t", tid, tv))

	aid := storage.NewIntColumn("id")
	atid := storage.NewIntColumn("t_id")
	av := storage.NewIntColumn("v")
	for i := int64(1); i <= 30; i++ {
		aid.AppendInt(i)
		atid.AppendInt(1 + (i % 10))
		av.AppendInt(i % 5)
	}
	db.Add(storage.NewTable("a", aid, atid, av))

	bid := storage.NewIntColumn("id")
	btid := storage.NewIntColumn("t_id")
	for i := int64(1); i <= 20; i++ {
		bid.AppendInt(i)
		if i%7 == 0 {
			btid.AppendNull()
		} else {
			btid.AppendInt(1 + (i % 5)) // only t.id 1..5 matched
		}
	}
	db.Add(storage.NewTable("b", bid, btid))

	q := &query.Query{
		ID: "tiny",
		Rels: []query.Rel{
			{Alias: "t", Table: "t", Preds: []*query.Pred{query.LtInt("v", 2)}},
			{Alias: "a", Table: "a", Preds: []*query.Pred{query.EqInt("v", 1)}},
			{Alias: "b", Table: "b"},
		},
		Joins: []query.Join{
			{LeftAlias: "a", LeftCol: "t_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "b", LeftCol: "t_id", RightAlias: "t", RightCol: "id"},
		},
	}
	return db, query.MustBuildGraph(q)
}

func TestTinyStarAgainstBruteForce(t *testing.T) {
	db, g := tinyDB()
	st, err := Compute(db, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.ConnectedSubsets(func(s query.BitSet) {
		want := bruteForce(db, g, s)
		got, ok := st.Card(s)
		if !ok {
			t.Fatalf("no card for %v", s)
		}
		if int64(got) != want {
			t.Errorf("card(%v) = %g, want %d", s, got, want)
		}
	})
	if st.NumSubgraphs() != 5 {
		// t, a, b, {t,a}, {t,b}, {t,a,b} minus... a-b not adjacent: subsets
		// are {t},{a},{b},{ta},{tb},{tab} = 6.
		if st.NumSubgraphs() != 6 {
			t.Fatalf("computed %d subgraphs", st.NumSubgraphs())
		}
	}
}

func TestSansSelection(t *testing.T) {
	db, g := tinyDB()
	st, err := Compute(db, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sans({t,a}, a) joins filtered t with *unfiltered* a.
	ta := query.NewBitSet(0, 1)
	got, ok := st.SansSelection(ta, 1)
	if !ok {
		t.Fatal("no sans-selection value")
	}
	// Brute force: t rows with v<2 joined against all of a.
	gNoPred := *g.Q
	gNoPred.Rels = append([]query.Rel(nil), g.Q.Rels...)
	gNoPred.Rels[1] = query.Rel{Alias: "a", Table: "a"}
	g2 := query.MustBuildGraph(&gNoPred)
	want := bruteForce(db, g2, ta)
	if int64(got) != want {
		t.Fatalf("sans = %g, want %d", got, want)
	}
	// b has no predicates: sans == card.
	tb := query.NewBitSet(0, 2)
	sv, ok := st.SansSelection(tb, 2)
	cv, _ := st.Card(tb)
	if !ok || sv != cv {
		t.Fatalf("sans for unfiltered rel = %g, want card %g", sv, cv)
	}
	// Single relation: sans is the raw table size.
	sv, ok = st.SansSelection(query.Bit(1), 1)
	if !ok || sv != 30 {
		t.Fatalf("sans single = %g, want 30", sv)
	}
}

// Property: on random small schemas/queries, the DP matches brute force for
// every connected subgraph.
func TestRandomQueriesAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := storage.NewDatabase()
		nRels := 2 + rng.Intn(3)
		q := &query.Query{ID: "rnd"}
		for i := 0; i < nRels; i++ {
			id := storage.NewIntColumn("id")
			fk := storage.NewIntColumn("fk")
			v := storage.NewIntColumn("v")
			rows := 3 + rng.Intn(10)
			for r := 0; r < rows; r++ {
				id.AppendInt(int64(rng.Intn(6)))
				if rng.Intn(8) == 0 {
					fk.AppendNull()
				} else {
					fk.AppendInt(int64(rng.Intn(6)))
				}
				v.AppendInt(int64(rng.Intn(3)))
			}
			name := string(rune('A' + i))
			db.Add(storage.NewTable(name, id, fk, v))
			rel := query.Rel{Alias: string(rune('a' + i)), Table: name}
			if rng.Intn(2) == 0 {
				rel.Preds = []*query.Pred{query.LeInt("v", int64(rng.Intn(3)))}
			}
			q.Rels = append(q.Rels, rel)
		}
		cols := []string{"id", "fk", "v"}
		for i := 1; i < nRels; i++ {
			p := rng.Intn(i)
			q.Joins = append(q.Joins, query.Join{
				LeftAlias: q.Rels[p].Alias, LeftCol: cols[rng.Intn(3)],
				RightAlias: q.Rels[i].Alias, RightCol: cols[rng.Intn(3)],
			})
		}
		// Occasionally add a parallel or transitive edge.
		if nRels >= 3 && rng.Intn(2) == 0 {
			q.Joins = append(q.Joins, query.Join{
				LeftAlias: q.Rels[0].Alias, LeftCol: cols[rng.Intn(3)],
				RightAlias: q.Rels[nRels-1].Alias, RightCol: cols[rng.Intn(3)],
			})
		}
		g := query.MustBuildGraph(q)
		st, err := Compute(db, g, Options{})
		if err != nil {
			return false
		}
		ok := true
		g.ConnectedSubsets(func(s query.BitSet) {
			want := bruteForce(db, g, s)
			got, found := st.Card(s)
			if !found || int64(got) != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// smallIMDB returns the shared small test database; several tests use the
// same (scale, seed) and generating it once keeps the -race job fast.
var (
	smallOnce sync.Once
	smallDB   *storage.Database
)

func smallIMDB() *storage.Database {
	smallOnce.Do(func() {
		smallDB = imdb.Generate(imdb.Config{Scale: 0.05, Seed: 3})
	})
	return smallDB
}

// TestParallelEquivalenceJOB is the core parallelism contract: the DP's
// Dump (cards and sans entries, in their deterministic order) is identical
// at any worker count over real JOB queries. It runs in the -race -short
// CI job, which doubles as the race exercise of the level fan-out.
func TestParallelEquivalenceJOB(t *testing.T) {
	db := smallIMDB()
	for _, qid := range []string{"1a", "3b", "13d"} {
		g := query.MustBuildGraph(job.ByID(qid))
		serial, err := Compute(db, g, Options{Parallel: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", qid, err)
		}
		want := serial.Dump()
		for _, workers := range []int{2, 8} {
			st, err := Compute(db, g, Options{Parallel: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", qid, workers, err)
			}
			if got := st.Dump(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Dump at workers=%d differs from serial", qid, workers)
			}
		}
	}
}

// TestParallelComputeRepeatedRace hammers the shared lazy hash cache: many
// back-to-back parallel runs over a query whose level-2 subgraphs extend by
// the same relations, so workers collide on hashOf keys. Run under -race.
func TestParallelComputeRepeatedRace(t *testing.T) {
	db, g := tinyDB()
	want := int64(bruteForce(db, g, query.FullSet(g.N)))
	for i := 0; i < 25; i++ {
		st, err := Compute(db, g, Options{Parallel: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := st.Card(query.FullSet(g.N)); int64(got) != want {
			t.Fatalf("run %d: card = %g, want %d", i, got, want)
		}
	}
}

// TestMaxRowsReportsSubgraph pins two MaxRows fixes: overflow errors name
// the actual subgraph that blew the limit (not the empty set), and the
// limit is exact — equal to the largest materialised intermediate still
// succeeds, one below fails before emitting the overflowing tuple.
func TestMaxRowsReportsSubgraph(t *testing.T) {
	db, g := tinyDB()
	st, err := Compute(db, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := st.Dump()
	max := 0
	for _, e := range d.Cards {
		if !e.S.Single() && int(e.Card) > max {
			max = int(e.Card)
		}
	}
	if max < 2 {
		t.Fatalf("tinyDB intermediates too small to exercise MaxRows (max %d)", max)
	}
	// Sanity: no sans count may hit its own (SansRowsFactor*max) bound at
	// the exact-fit limit, or the success half of this test would flake.
	for _, e := range d.Sans {
		if !e.S.Single() && int(e.Card) > SansRowsFactor*max {
			t.Fatalf("sans(%v,%d)=%g exceeds %d*%d; pick a different fixture",
				e.S, e.Rel, e.Card, SansRowsFactor, max)
		}
	}
	if _, err := Compute(db, g, Options{MaxRows: max}); err != nil {
		t.Fatalf("MaxRows=%d (exact fit) should succeed: %v", max, err)
	}
	_, err = Compute(db, g, Options{MaxRows: max - 1})
	if err == nil {
		t.Fatalf("MaxRows=%d should fail", max-1)
	}
	if strings.Contains(err.Error(), "{}") {
		t.Fatalf("overflow error names the empty set: %v", err)
	}
	if !strings.Contains(err.Error(), "{0,") {
		t.Fatalf("overflow error does not name the offending subgraph: %v", err)
	}
}

// TestSansCountLimit pins the countJoin bound: a sans-selection count may
// legitimately exceed MaxRows (it gets SansRowsFactor headroom, here 1000
// counted vs MaxRows=125), but past that headroom it aborts with an error
// naming the subgraph and the unfiltered relation.
func TestSansCountLimit(t *testing.T) {
	db := storage.NewDatabase()
	tid := storage.NewIntColumn("id")
	tid.AppendInt(1)
	db.Add(storage.NewTable("t", tid))
	aid := storage.NewIntColumn("t_id")
	av := storage.NewIntColumn("v")
	for i := 0; i < 1000; i++ {
		aid.AppendInt(1)
		av.AppendInt(int64(i)) // predicate v=0 keeps exactly one row
	}
	db.Add(storage.NewTable("a", aid, av))
	q := &query.Query{
		ID: "sans",
		Rels: []query.Rel{
			{Alias: "t", Table: "t"},
			{Alias: "a", Table: "a", Preds: []*query.Pred{query.EqInt("v", 0)}},
		},
		Joins: []query.Join{{LeftAlias: "a", LeftCol: "t_id", RightAlias: "t", RightCol: "id"}},
	}
	g := query.MustBuildGraph(q)

	// Materialised intermediates are all 1 tuple; sans({t,a}, a) = 1000.
	// 1000 <= SansRowsFactor*125, so MaxRows=125 must succeed...
	st, err := Compute(db, g, Options{MaxRows: 125})
	if err != nil {
		t.Fatalf("sans count within headroom should succeed: %v", err)
	}
	if v, ok := st.SansSelection(query.NewBitSet(0, 1), 1); !ok || v != 1000 {
		t.Fatalf("sans = %g, want 1000", v)
	}
	// ...and MaxRows=124 (headroom 992 < 1000) must abort with a useful error.
	_, err = Compute(db, g, Options{MaxRows: 124})
	if err == nil {
		t.Fatal("sans count past headroom should fail")
	}
	for _, want := range []string{"sans-selection", "{0,1}"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestMaxSizeOption(t *testing.T) {
	db, g := tinyDB()
	st, err := Compute(db, g, Options{MaxSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Card(query.NewBitSet(0, 1, 2)); ok {
		t.Fatal("size-3 subgraph computed despite MaxSize=2")
	}
	if _, ok := st.Card(query.NewBitSet(0, 1)); !ok {
		t.Fatal("size-2 subgraph missing")
	}
	if st.MaxSize() != 2 {
		t.Fatalf("MaxSize = %d", st.MaxSize())
	}
}

func TestJOBQueryOnSmallData(t *testing.T) {
	db := smallIMDB()
	q := job.ByID("3b")
	g := query.MustBuildGraph(q)
	st, err := Compute(db, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := query.FullSet(g.N)
	want := bruteForceSmart(t, db, g, full)
	got, ok := st.Card(full)
	if !ok || int64(got) != want {
		t.Fatalf("JOB 3b card = %g, want %d", got, want)
	}
}

// bruteForceSmart is bruteForce but bails out if the tables are too large
// for a nested-loop reference run.
func bruteForceSmart(t *testing.T, db *storage.Database, g *query.Graph, s query.BitSet) int64 {
	prod := 1.0
	s.ForEach(func(r int) {
		n := 0
		tbl := db.MustTable(g.Q.Rels[r].Table)
		f, _ := query.CompileAll(g.Q.Rels[r].Preds, tbl)
		for i := 0; i < tbl.NumRows(); i++ {
			if f(i) {
				n++
			}
		}
		prod *= float64(n + 1)
	})
	if prod > 5e7 {
		t.Skip("reference cross product too large")
	}
	return bruteForce(db, g, s)
}
