package truecard

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobench/internal/imdb"
	"jobench/internal/job"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// bruteForce counts the join result of subgraph s by nested loops over the
// base tables, the reference implementation for correctness tests.
func bruteForce(db *storage.Database, g *query.Graph, s query.BitSet) int64 {
	rels := s.Elems()
	tables := make([]*storage.Table, len(rels))
	filters := make([]func(int) bool, len(rels))
	for i, r := range rels {
		tables[i] = db.MustTable(g.Q.Rels[r].Table)
		f, err := query.CompileAll(g.Q.Rels[r].Preds, tables[i])
		if err != nil {
			panic(err)
		}
		filters[i] = f
	}
	pos := make(map[int]int, len(rels))
	for i, r := range rels {
		pos[r] = i
	}
	var edges []query.Join
	for _, ei := range g.EdgesWithin(s) {
		edges = append(edges, g.Edges[ei].Preds...)
	}
	var count int64
	rows := make([]int, len(rels))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(rels) {
			for _, j := range edges {
				li, ri := pos[g.Q.RelIndex(j.LeftAlias)], pos[g.Q.RelIndex(j.RightAlias)]
				lc := tables[li].MustColumn(j.LeftCol)
				rc := tables[ri].MustColumn(j.RightCol)
				if lc.IsNull(rows[li]) || rc.IsNull(rows[ri]) {
					return
				}
				if lc.Ints[rows[li]] != rc.Ints[rows[ri]] {
					return
				}
			}
			count++
			return
		}
		for r := 0; r < tables[depth].NumRows(); r++ {
			if !filters[depth](r) {
				continue
			}
			rows[depth] = r
			rec(depth + 1)
		}
	}
	rec(0)
	return count
}

// tinyDB builds a 3-table star with known cardinalities.
func tinyDB() (*storage.Database, *query.Graph) {
	db := storage.NewDatabase()
	tid := storage.NewIntColumn("id")
	tv := storage.NewIntColumn("v")
	for i := int64(1); i <= 10; i++ {
		tid.AppendInt(i)
		tv.AppendInt(i % 3)
	}
	db.Add(storage.NewTable("t", tid, tv))

	aid := storage.NewIntColumn("id")
	atid := storage.NewIntColumn("t_id")
	av := storage.NewIntColumn("v")
	for i := int64(1); i <= 30; i++ {
		aid.AppendInt(i)
		atid.AppendInt(1 + (i % 10))
		av.AppendInt(i % 5)
	}
	db.Add(storage.NewTable("a", aid, atid, av))

	bid := storage.NewIntColumn("id")
	btid := storage.NewIntColumn("t_id")
	for i := int64(1); i <= 20; i++ {
		bid.AppendInt(i)
		if i%7 == 0 {
			btid.AppendNull()
		} else {
			btid.AppendInt(1 + (i % 5)) // only t.id 1..5 matched
		}
	}
	db.Add(storage.NewTable("b", bid, btid))

	q := &query.Query{
		ID: "tiny",
		Rels: []query.Rel{
			{Alias: "t", Table: "t", Preds: []*query.Pred{query.LtInt("v", 2)}},
			{Alias: "a", Table: "a", Preds: []*query.Pred{query.EqInt("v", 1)}},
			{Alias: "b", Table: "b"},
		},
		Joins: []query.Join{
			{LeftAlias: "a", LeftCol: "t_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "b", LeftCol: "t_id", RightAlias: "t", RightCol: "id"},
		},
	}
	return db, query.MustBuildGraph(q)
}

func TestTinyStarAgainstBruteForce(t *testing.T) {
	db, g := tinyDB()
	st, err := Compute(db, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.ConnectedSubsets(func(s query.BitSet) {
		want := bruteForce(db, g, s)
		got, ok := st.Card(s)
		if !ok {
			t.Fatalf("no card for %v", s)
		}
		if int64(got) != want {
			t.Errorf("card(%v) = %g, want %d", s, got, want)
		}
	})
	if st.NumSubgraphs() != 5 {
		// t, a, b, {t,a}, {t,b}, {t,a,b} minus... a-b not adjacent: subsets
		// are {t},{a},{b},{ta},{tb},{tab} = 6.
		if st.NumSubgraphs() != 6 {
			t.Fatalf("computed %d subgraphs", st.NumSubgraphs())
		}
	}
}

func TestSansSelection(t *testing.T) {
	db, g := tinyDB()
	st, err := Compute(db, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sans({t,a}, a) joins filtered t with *unfiltered* a.
	ta := query.NewBitSet(0, 1)
	got, ok := st.SansSelection(ta, 1)
	if !ok {
		t.Fatal("no sans-selection value")
	}
	// Brute force: t rows with v<2 joined against all of a.
	gNoPred := *g.Q
	gNoPred.Rels = append([]query.Rel(nil), g.Q.Rels...)
	gNoPred.Rels[1] = query.Rel{Alias: "a", Table: "a"}
	g2 := query.MustBuildGraph(&gNoPred)
	want := bruteForce(db, g2, ta)
	if int64(got) != want {
		t.Fatalf("sans = %g, want %d", got, want)
	}
	// b has no predicates: sans == card.
	tb := query.NewBitSet(0, 2)
	sv, ok := st.SansSelection(tb, 2)
	cv, _ := st.Card(tb)
	if !ok || sv != cv {
		t.Fatalf("sans for unfiltered rel = %g, want card %g", sv, cv)
	}
	// Single relation: sans is the raw table size.
	sv, ok = st.SansSelection(query.Bit(1), 1)
	if !ok || sv != 30 {
		t.Fatalf("sans single = %g, want 30", sv)
	}
}

// Property: on random small schemas/queries, the DP matches brute force for
// every connected subgraph.
func TestRandomQueriesAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := storage.NewDatabase()
		nRels := 2 + rng.Intn(3)
		q := &query.Query{ID: "rnd"}
		for i := 0; i < nRels; i++ {
			id := storage.NewIntColumn("id")
			fk := storage.NewIntColumn("fk")
			v := storage.NewIntColumn("v")
			rows := 3 + rng.Intn(10)
			for r := 0; r < rows; r++ {
				id.AppendInt(int64(rng.Intn(6)))
				if rng.Intn(8) == 0 {
					fk.AppendNull()
				} else {
					fk.AppendInt(int64(rng.Intn(6)))
				}
				v.AppendInt(int64(rng.Intn(3)))
			}
			name := string(rune('A' + i))
			db.Add(storage.NewTable(name, id, fk, v))
			rel := query.Rel{Alias: string(rune('a' + i)), Table: name}
			if rng.Intn(2) == 0 {
				rel.Preds = []*query.Pred{query.LeInt("v", int64(rng.Intn(3)))}
			}
			q.Rels = append(q.Rels, rel)
		}
		cols := []string{"id", "fk", "v"}
		for i := 1; i < nRels; i++ {
			p := rng.Intn(i)
			q.Joins = append(q.Joins, query.Join{
				LeftAlias: q.Rels[p].Alias, LeftCol: cols[rng.Intn(3)],
				RightAlias: q.Rels[i].Alias, RightCol: cols[rng.Intn(3)],
			})
		}
		// Occasionally add a parallel or transitive edge.
		if nRels >= 3 && rng.Intn(2) == 0 {
			q.Joins = append(q.Joins, query.Join{
				LeftAlias: q.Rels[0].Alias, LeftCol: cols[rng.Intn(3)],
				RightAlias: q.Rels[nRels-1].Alias, RightCol: cols[rng.Intn(3)],
			})
		}
		g := query.MustBuildGraph(q)
		st, err := Compute(db, g, Options{})
		if err != nil {
			return false
		}
		ok := true
		g.ConnectedSubsets(func(s query.BitSet) {
			want := bruteForce(db, g, s)
			got, found := st.Card(s)
			if !found || int64(got) != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSizeOption(t *testing.T) {
	db, g := tinyDB()
	st, err := Compute(db, g, Options{MaxSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Card(query.NewBitSet(0, 1, 2)); ok {
		t.Fatal("size-3 subgraph computed despite MaxSize=2")
	}
	if _, ok := st.Card(query.NewBitSet(0, 1)); !ok {
		t.Fatal("size-2 subgraph missing")
	}
	if st.MaxSize() != 2 {
		t.Fatalf("MaxSize = %d", st.MaxSize())
	}
}

func TestJOBQueryOnSmallData(t *testing.T) {
	db := imdb.Generate(imdb.Config{Scale: 0.05, Seed: 3})
	q := job.ByID("3b")
	g := query.MustBuildGraph(q)
	st, err := Compute(db, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := query.FullSet(g.N)
	want := bruteForceSmart(t, db, g, full)
	got, ok := st.Card(full)
	if !ok || int64(got) != want {
		t.Fatalf("JOB 3b card = %g, want %d", got, want)
	}
}

// bruteForceSmart is bruteForce but bails out if the tables are too large
// for a nested-loop reference run.
func bruteForceSmart(t *testing.T, db *storage.Database, g *query.Graph, s query.BitSet) int64 {
	prod := 1.0
	s.ForEach(func(r int) {
		n := 0
		tbl := db.MustTable(g.Q.Rels[r].Table)
		f, _ := query.CompileAll(g.Q.Rels[r].Preds, tbl)
		for i := 0; i < tbl.NumRows(); i++ {
			if f(i) {
				n++
			}
		}
		prod *= float64(n + 1)
	})
	if prod > 5e7 {
		t.Skip("reference cross product too large")
	}
	return bruteForce(db, g, s)
}
