// Package workload makes the benchmark world a first-class dimension of
// the system. A Workload bundles a deterministic data generator, a query
// set, and the index-building recipe for one benchmark (IMDB/JOB, mini
// TPC-H, skewed IMDB); a small fixed registry maps names to
// implementations. Every layer that used to hardwire the IMDB world — the
// jobench facade, the snapshot store, the service pool, the router's
// affinity hashing, the load generator — now keys on Key, the
// (workload, seed, scale) triple.
package workload

import (
	"fmt"
	"sort"
	"strconv"

	"jobench/internal/imdb"
	"jobench/internal/index"
	"jobench/internal/job"
	"jobench/internal/query"
	"jobench/internal/storage"
	"jobench/internal/tpch"
)

// DefaultName is the workload every layer falls back to when none is
// named: the paper's IMDB/JOB world.
const DefaultName = "imdb"

// Config carries the generator inputs shared by every workload. Zero
// values default like the facade: Scale 0 means 1.0, Seed 0 means 42.
type Config struct {
	// Scale multiplies every table's row count.
	Scale float64
	// Seed makes generation fully deterministic.
	Seed int64
}

// Normalize applies the shared defaulting (Scale <= 0 → 1.0, Seed 0 → 42).
func (c Config) Normalize() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Workload is one benchmark world: a named deterministic generator plus
// the queries and physical designs that run against it.
type Workload interface {
	// Name is the registry name ("imdb", "tpch", "imdb-skew").
	Name() string
	// Generate deterministically builds the database for the config.
	Generate(cfg Config) *storage.Database
	// Queries returns the workload's query set in stable order.
	Queries() []*query.Query
	// BuildIndexes constructs the index set for one physical design.
	BuildIndexes(db *storage.Database, cfg index.Config) (*index.Set, error)
	// IndexConfigs lists the physical designs the workload supports, in
	// the order the facade builds them.
	IndexConfigs() []index.Config
}

// Key identifies one generated world: which workload, which seed, which
// scale. It is the unit of affinity across the system — snapshot
// fingerprints, service pool entries, and router ring placement all derive
// from it.
type Key struct {
	// Workload is the registry name; empty means DefaultName.
	Workload string
	// Seed is the generator seed (0 means 42).
	Seed int64
	// Scale is the generator scale (0 means 1.0).
	Scale float64
}

// NewKey builds a normalized Key: empty workload becomes DefaultName and
// the config defaulting is applied.
func NewKey(workload string, seed int64, scale float64) Key {
	if workload == "" {
		workload = DefaultName
	}
	cfg := Config{Scale: scale, Seed: seed}.Normalize()
	return Key{Workload: workload, Seed: cfg.Seed, Scale: cfg.Scale}
}

// Config returns the generator inputs of the key.
func (k Key) Config() Config { return Config{Scale: k.Scale, Seed: k.Seed} }

// String renders the key canonically ("imdb/seed=42/scale=0.1"); equal
// keys render equally, so the string is usable as a map or affinity key.
func (k Key) String() string {
	w := k.Workload
	if w == "" {
		w = DefaultName
	}
	return w + "/seed=" + strconv.FormatInt(k.Seed, 10) +
		"/scale=" + strconv.FormatFloat(k.Scale, 'g', -1, 64)
}

// registry is fixed at init time; no mutation after that, so reads are
// safe without locking.
var registry = map[string]Workload{}

func register(w Workload) { registry[w.Name()] = w }

// Get looks a workload up by name; empty selects DefaultName. The error
// lists the known names so CLI and service surfaces can echo it verbatim.
func Get(name string) (Workload, error) {
	if name == "" {
		name = DefaultName
	}
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (known: %s)", name, nameList())
	}
	return w, nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func nameList() string {
	s := ""
	for i, n := range Names() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

func init() {
	register(imdbWorkload{})
	register(tpchWorkload{})
	register(imdbSkewWorkload{})
}

// imdbWorkload is the default world: the synthetic IMDB database and the
// 113-query Join Order Benchmark. It is byte-identical to what the facade
// generated before workloads existed.
type imdbWorkload struct{}

func (imdbWorkload) Name() string { return "imdb" }

func (imdbWorkload) Generate(cfg Config) *storage.Database {
	cfg = cfg.Normalize()
	return imdb.Generate(imdb.Config{Scale: cfg.Scale, Seed: cfg.Seed})
}

func (imdbWorkload) Queries() []*query.Query { return job.Workload() }

func (imdbWorkload) BuildIndexes(db *storage.Database, cfg index.Config) (*index.Set, error) {
	return imdb.BuildIndexes(db, cfg)
}

func (imdbWorkload) IndexConfigs() []index.Config {
	return []index.Config{index.NoIndexes, index.PKOnly, index.PKFK}
}

// SkewZipf and SkewCorrelation are the knob settings of the "imdb-skew"
// workload: a substantially heavier popularity tail and join-crossing
// correlations pushed near their ceiling, so the estimator-breaking
// properties of the IMDB data become a dial rather than a fixed dataset.
const (
	// SkewZipf multiplies the Zipf-style fan-out exponent (baseline 1.05).
	SkewZipf = 1.6
	// SkewCorrelation multiplies the country-local sampling probabilities
	// (baselines 0.70 and 0.65, clamped below 0.99).
	SkewCorrelation = 1.35
)

// imdbSkewWorkload is the IMDB generator with the skew and correlation
// knobs turned up; it shares the JOB query set and index recipe with the
// default workload — only the data distribution changes.
type imdbSkewWorkload struct{}

func (imdbSkewWorkload) Name() string { return "imdb-skew" }

func (imdbSkewWorkload) Generate(cfg Config) *storage.Database {
	cfg = cfg.Normalize()
	return imdb.Generate(imdb.Config{
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		Skew:        SkewZipf,
		Correlation: SkewCorrelation,
	})
}

func (imdbSkewWorkload) Queries() []*query.Query { return job.Workload() }

func (imdbSkewWorkload) BuildIndexes(db *storage.Database, cfg index.Config) (*index.Set, error) {
	return imdb.BuildIndexes(db, cfg)
}

func (imdbSkewWorkload) IndexConfigs() []index.Config {
	return []index.Config{index.NoIndexes, index.PKOnly, index.PKFK}
}

// tpchWorkload is the mini TPC-H world: uniform, independent data over 7
// tables and ten SPJ query families.
type tpchWorkload struct{}

func (tpchWorkload) Name() string { return "tpch" }

func (tpchWorkload) Generate(cfg Config) *storage.Database {
	cfg = cfg.Normalize()
	return tpch.Generate(tpch.Config{Scale: cfg.Scale, Seed: cfg.Seed})
}

func (tpchWorkload) Queries() []*query.Query { return tpch.Queries() }

func (tpchWorkload) BuildIndexes(db *storage.Database, cfg index.Config) (*index.Set, error) {
	return tpch.BuildIndexes(db, cfg)
}

func (tpchWorkload) IndexConfigs() []index.Config {
	return []index.Config{index.NoIndexes, index.PKOnly, index.PKFK}
}
