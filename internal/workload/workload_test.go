package workload_test

// External test package on purpose: it exercises the registry exactly the
// way the facade and service do, and pulls in the snapshot encoder (which
// itself imports workload) without a cycle.

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"jobench/internal/index"
	"jobench/internal/snapshot"
	"jobench/internal/workload"
)

func TestRegistry(t *testing.T) {
	want := []string{"imdb", "imdb-skew", "tpch"}
	got := workload.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if w.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, w.Name())
		}
		if len(w.Queries()) == 0 {
			t.Fatalf("%s: empty query set", name)
		}
		if len(w.IndexConfigs()) == 0 {
			t.Fatalf("%s: no index configs", name)
		}
	}
	def, err := workload.Get("")
	if err != nil || def.Name() != workload.DefaultName {
		t.Fatalf("Get(\"\") = %v, %v; want the default workload", def, err)
	}
	if _, err := workload.Get("nope"); err == nil {
		t.Fatal("Get(\"nope\") did not fail")
	}
}

func TestKeyNormalization(t *testing.T) {
	k := workload.NewKey("", 0, 0)
	if k.Workload != "imdb" || k.Seed != 42 || k.Scale != 1.0 {
		t.Fatalf("NewKey zero values = %+v, want imdb/42/1", k)
	}
	if got, want := workload.NewKey("tpch", 7, 0.1).String(), "tpch/seed=7/scale=0.1"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// Equal worlds must render equally regardless of float spelling.
	if workload.NewKey("imdb", 42, 0.1).String() != workload.NewKey("imdb", 42, 0.10).String() {
		t.Fatal("0.1 and 0.10 rendered differently")
	}
}

// dbHash is the golden-determinism fingerprint: the snapshot encoding of a
// database is canonical (same rows → same bytes at any worker count), so a
// hash over it pins the generated world bit-for-bit.
func dbHash(t *testing.T, w workload.Workload, cfg workload.Config, workers int) string {
	t.Helper()
	db := w.Generate(cfg)
	data, err := snapshot.EncodeDatabase(db, "golden", workers)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestGenerationDeterminism: every registered workload generates the exact
// same database for the same (seed, scale) — across repeated runs and
// across snapshot-encoder worker counts (1 vs 8), the two axes that could
// silently break reproducibility.
func TestGenerationDeterminism(t *testing.T) {
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			cfg := workload.Config{Scale: 0.05, Seed: 42}
			h1 := dbHash(t, w, cfg, 1)
			h8 := dbHash(t, w, cfg, 8)
			if h1 != h8 {
				t.Fatalf("encoding differs across worker counts: %s vs %s", h1, h8)
			}
			if again := dbHash(t, w, cfg, 1); again != h1 {
				t.Fatalf("regeneration differs for the same seed: %s vs %s", again, h1)
			}
			other := dbHash(t, w, workload.Config{Scale: 0.05, Seed: 43}, 1)
			if other == h1 {
				t.Fatal("different seeds produced an identical database")
			}
		})
	}
}

// TestSkewDiverges: imdb-skew must actually generate a different world than
// imdb at the same (seed, scale) — otherwise the knobs are dead.
func TestSkewDiverges(t *testing.T) {
	base, _ := workload.Get("imdb")
	skew, _ := workload.Get("imdb-skew")
	cfg := workload.Config{Scale: 0.05, Seed: 42}
	if dbHash(t, base, cfg, 1) == dbHash(t, skew, cfg, 1) {
		t.Fatal("imdb-skew generated the same database as imdb")
	}
}

// TestSnapshotRoundTrip: for every workload, the database and each index
// configuration survive a save/load cycle through a store keyed by the
// workload's own Key, and a store for a different workload at the same
// (seed, scale) misses.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			world := workload.NewKey(name, 42, 0.05)
			store := snapshot.New(dir, snapshot.Key{World: world, QueryHash: "rt"}, 1)
			db := w.Generate(world.Config())
			if err := store.SaveDatabase(db); err != nil {
				t.Fatal(err)
			}
			loaded, err := store.LoadDatabase()
			if err != nil {
				t.Fatal(err)
			}
			a, _ := snapshot.EncodeDatabase(db, "cmp", 1)
			b, _ := snapshot.EncodeDatabase(loaded, "cmp", 1)
			if string(a) != string(b) {
				t.Fatal("database round-trip is not byte-identical")
			}
			for _, icfg := range w.IndexConfigs() {
				set, err := w.BuildIndexes(db, icfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := store.SaveIndexes(icfg.Label(), set); err != nil {
					t.Fatal(err)
				}
				if _, err := store.LoadIndexes(icfg.Label(), loaded); err != nil {
					t.Fatalf("%s indexes: %v", icfg.Label(), err)
				}
			}
			if icfg := w.IndexConfigs()[0]; icfg != index.NoIndexes {
				t.Fatalf("first index config = %v, want none", icfg)
			}
			// Another workload's store at the same (seed, scale) must miss:
			// the fingerprint keys on the workload name.
			otherName := "tpch"
			if name == "tpch" {
				otherName = "imdb"
			}
			other := snapshot.New(dir, snapshot.Key{
				World:     workload.NewKey(otherName, 42, 0.05),
				QueryHash: "rt",
			}, 1)
			if _, err := other.LoadDatabase(); !snapshot.IsMiss(err) {
				t.Fatalf("cross-workload load: want miss, got %v", err)
			}
		})
	}
}
