// Package jobench is a from-scratch Go reproduction of "How Good Are Query
// Optimizers, Really?" (Leis et al., VLDB 2015): the Join Order Benchmark
// (JOB) over a synthetic correlated IMDB data set, five cardinality
// estimator profiles, cardinality injection, three cost models, five plan
// enumeration algorithms, and a metered execution engine.
//
// This package is the high-level facade. A System owns a generated
// database, its statistics and indexes, and the 113-query workload;
// Optimize, Execute and Estimate expose the optimizer pipeline with every
// knob the paper turns (estimator, cost model, physical design, engine
// rules, enumeration algorithm, tree shape). The full experiment drivers
// that regenerate the paper's tables and figures live in
// internal/experiments and are reachable through cmd/jobench.
package jobench

import (
	"context"
	"fmt"
	"log"
	"sync"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/engine"
	"jobench/internal/imdb"
	"jobench/internal/index"
	"jobench/internal/optimizer"
	"jobench/internal/parallel"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/reopt"
	"jobench/internal/snapshot"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/trace"
	"jobench/internal/truecard"
	"jobench/internal/workload"
)

// Options configure Open.
type Options struct {
	// Workload names the benchmark world to open: "imdb" (the default —
	// the 21-table IMDB data set and the 113-query JOB workload), "tpch"
	// (the mini TPC-H world), or "imdb-skew" (IMDB with the skew and
	// correlation knobs turned up). See internal/workload.
	Workload string
	// Scale sizes the data set; 1.0 generates ~10,000 movies and ~450,000
	// rows across the 21 IMDB tables. Zero defaults to 1.0.
	Scale float64
	// Seed makes everything deterministic. Zero defaults to 42.
	Seed int64
	// Parallel is the worker-pool size for Open's index builds, for
	// Warmup's true-cardinality sweep, and for the per-subset fan-out
	// inside each single query's true-cardinality DP (truecard.Options.
	// Parallel). 0 means GOMAXPROCS; 1 is fully serial. Results are
	// identical at any setting.
	Parallel int
	// CacheDir enables the persistent snapshot store: the generated
	// database, its statistics, the three index sets, and every computed
	// true-cardinality store
	// are persisted beneath this directory and reloaded by the next Open
	// with the same Scale, Seed, and workload, skipping generation and
	// truth computation entirely. Snapshots are versioned and checksummed;
	// a corrupted, truncated, or version-bumped snapshot is regenerated
	// with a warning through Logf, never trusted and never fatal. Empty
	// disables caching.
	CacheDir string
	// Logf receives cache diagnostics (snapshot load/save warnings).
	// Nil means the standard library's log.Printf.
	Logf func(format string, args ...any)
	// FeedbackBytes bounds the adaptive plan-feedback cache in accounted
	// bytes (observed cardinalities keyed by query fingerprint, consulted
	// by OptimizeAdaptive/ExecuteAdaptive). Non-positive selects
	// reopt.DefaultBudgetBytes.
	FeedbackBytes int64
}

// generateDB, computeTruth and buildIndexes are indirection points so the
// cache tests can prove a warm Open performs zero database generation, zero
// true-cardinality computation, and zero index construction. They
// dispatch through the workload so every registered world shares the
// cache-or-regenerate machinery.
var (
	generateDB = func(w workload.Workload, cfg workload.Config) *storage.Database {
		return w.Generate(cfg)
	}
	computeTruth = truecard.ComputeContext
	buildIndexes = func(w workload.Workload, db *storage.Database, cfg IndexConfig) (*index.Set, error) {
		return w.BuildIndexes(db, cfg)
	}
)

// IndexConfig selects a physical design (§4 of the paper).
type IndexConfig = imdb.IndexConfig

// The three physical designs.
const (
	NoIndexes = imdb.NoIndexes
	PKOnly    = imdb.PKOnly
	PKFK      = imdb.PKFK
)

// Estimator names accepted by PlanOptions.Estimator.
const (
	EstPostgres = "postgres"
	EstDBMSA    = "dbms-a"
	EstDBMSB    = "dbms-b"
	EstDBMSC    = "dbms-c"
	EstHyPer    = "hyper"
	EstTrue     = "true"
)

// Cost model names accepted by PlanOptions.CostModel.
const (
	ModelPostgres = "postgres"
	ModelTuned    = "tuned"
	ModelSimple   = "simple"
)

// PlanOptions control one optimization.
type PlanOptions struct {
	// Estimator is one of the Est* names; empty means EstPostgres.
	// EstTrue uses exact cardinalities (computed on demand).
	Estimator string
	// CostModel is one of the Model* names; empty means ModelSimple.
	CostModel string
	// Indexes selects the physical design (default PKFK).
	Indexes IndexConfig
	// DisableNestedLoops removes non-indexed nested-loop joins (§4.1).
	DisableNestedLoops bool
	// Shape restricts tree shapes (default bushy).
	Shape plan.Shape
	// Algorithm selects the enumerator (default exhaustive DP).
	Algorithm optimizer.Algorithm
	// Seed drives randomized enumerators.
	Seed int64
}

// MakePlanOptions builds PlanOptions from the string knob names shared by
// the CLI's flags and the service's JSON API, so both surfaces accept
// exactly the same vocabulary. Empty strings select the defaults
// (postgres estimates, simple cost model, PK+FK indexes, bushy trees,
// exhaustive DP).
func MakePlanOptions(estimator, costModel, indexes string, disableNLJ bool, shape, algorithm string) (PlanOptions, error) {
	opts := PlanOptions{Estimator: estimator, CostModel: costModel, DisableNestedLoops: disableNLJ}
	switch indexes {
	case "none":
		opts.Indexes = NoIndexes
	case "pk":
		opts.Indexes = PKOnly
	case "pkfk", "":
		opts.Indexes = PKFK
	default:
		return opts, fmt.Errorf("jobench: unknown index config %q (none|pk|pkfk)", indexes)
	}
	switch shape {
	case "bushy", "":
		opts.Shape = plan.Bushy
	case "leftdeep":
		opts.Shape = plan.LeftDeep
	case "rightdeep":
		opts.Shape = plan.RightDeep
	case "zigzag":
		opts.Shape = plan.ZigZag
	default:
		return opts, fmt.Errorf("jobench: unknown shape %q (bushy|leftdeep|rightdeep|zigzag)", shape)
	}
	switch algorithm {
	case "dp", "":
		opts.Algorithm = optimizer.DP
	case "dpccp":
		opts.Algorithm = optimizer.DPccp
	case "quickpick":
		opts.Algorithm = optimizer.QuickPick1000
	case "goo":
		opts.Algorithm = optimizer.GOO
	default:
		return opts, fmt.Errorf("jobench: unknown algorithm %q (dp|dpccp|quickpick|goo)", algorithm)
	}
	return opts, nil
}

// RunOptions control one execution.
type RunOptions struct {
	PlanOptions
	// Rehash lets hash joins grow their tables at runtime (§4.1).
	Rehash bool
	// WorkLimit aborts after this many work units (0 = unlimited).
	WorkLimit int64
}

// Result reports one executed query.
type Result struct {
	Rows     int64
	Work     int64
	TimedOut bool
	Plan     string // EXPLAIN rendering of the executed plan
}

// System is an opened benchmark instance.
//
// Every method is safe for concurrent use by multiple goroutines — the
// service layer hammers one shared System from many requests at once. The
// pieces that make that true:
//
//   - The database, statistics, index sets, and estimators are immutable
//     after Open. Optimize/Execute/Estimate* build all per-call state fresh
//     (providers, optimizer, executor) and only read the shared structures.
//   - The query registry (queries, order, graphs) is guarded by an RWMutex
//     so AddQuery can run concurrently with the read paths.
//   - The lazily computed true-cardinality stores are guarded by a mutex,
//     and each store is computed through a single-flight group: concurrent
//     requests for one uncached query run exactly one DP and share it.
type System struct {
	world    workload.Key
	db       *storage.Database
	stats    *stats.DB
	idx      map[IndexConfig]*index.Set
	parallel int

	snap *snapshot.Store // nil when Options.CacheDir was empty
	logf func(format string, args ...any)

	qmu     sync.RWMutex
	queries map[string]*query.Query
	order   []string
	graphs  map[string]*query.Graph

	truthMu     sync.Mutex
	truth       map[string]*truecard.Store
	truthFlight parallel.Flight[string, *truecard.Store]

	estimators map[string]cardest.Estimator

	feedback *reopt.FeedbackCache
}

// Open generates the data set, computes statistics and indexes, and loads
// the workload's query set. With Options.CacheDir set, the database,
// statistics, index sets, and all previously computed true cardinalities
// load from the snapshot store instead of being regenerated.
func Open(opts Options) (*System, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	wl, err := workload.Get(opts.Workload)
	if err != nil {
		return nil, fmt.Errorf("jobench: %w", err)
	}
	world := workload.NewKey(wl.Name(), opts.Seed, opts.Scale)
	queries := wl.Queries()

	var snap *snapshot.Store
	if opts.CacheDir != "" {
		snap = snapshot.New(opts.CacheDir, snapshot.Key{
			World:     world,
			QueryHash: snapshot.WorkloadHash(queries),
		}, opts.Parallel)
	}

	// The database: load the snapshot when one exists, otherwise generate
	// and (best-effort) persist. Generation is deterministic in (Scale,
	// Seed), so a regenerated database is bit-identical to a cached one
	// and downstream snapshots (stats, truth) stay valid either way.
	var db *storage.Database
	if snap != nil {
		db, _ = snapshot.Load(logf, "jobench: snapshot database", snap.LoadDatabase)
	}
	if db == nil {
		db = generateDB(wl, world.Config())
		if snap != nil {
			snapshot.Save(logf, "jobench: snapshot save database", func() error {
				return snap.SaveDatabase(db)
			})
		}
	}

	// Statistics and the index sets only read the generated data, so
	// they build concurrently; each task writes its own destination.
	sopts := stats.Options{SampleSize: 30000, MCVTarget: 100, HistBuckets: 100, Seed: opts.Seed}
	configs := wl.IndexConfigs()
	var (
		sdb  *stats.DB
		sets = make([]*index.Set, len(configs))
	)
	if snap != nil {
		sdb, _ = snapshot.Load(logf, "jobench: snapshot stats", func() (*stats.DB, error) {
			return snap.LoadStats(sopts)
		})
	}
	statsCached := sdb != nil
	var tasks []func() error
	if !statsCached {
		tasks = append(tasks, func() error {
			sdb = stats.AnalyzeDatabase(db, sopts)
			return nil
		})
	}
	for i, cfg := range configs {
		tasks = append(tasks, func() (err error) {
			sets[i], err = snapshot.LoadOrBuildIndexes(snap, logf, "jobench", db, cfg,
				func(db *storage.Database, cfg index.Config) (*index.Set, error) {
					return buildIndexes(wl, db, cfg)
				})
			return err
		})
	}
	if err := parallel.Do(context.Background(), opts.Parallel, tasks...); err != nil {
		return nil, err
	}
	if !statsCached && snap != nil {
		snapshot.Save(logf, "jobench: snapshot save stats", func() error {
			return snap.SaveStats(sopts, sdb)
		})
	}

	s := &System{
		world:    world,
		db:       db,
		stats:    sdb,
		idx:      make(map[IndexConfig]*index.Set, len(configs)),
		parallel: opts.Parallel,
		snap:     snap,
		logf:     logf,
		queries:  make(map[string]*query.Query),
		graphs:   make(map[string]*query.Graph),
		truth:    make(map[string]*truecard.Store),
		feedback: reopt.NewFeedbackCache(opts.FeedbackBytes),
		estimators: map[string]cardest.Estimator{
			EstPostgres: cardest.NewPostgres(db, sdb),
			EstDBMSA:    cardest.NewDBMSA(db, sdb),
			EstDBMSB:    cardest.NewDBMSB(db, sdb),
			EstDBMSC:    cardest.NewDBMSC(db, sdb),
			EstHyPer:    cardest.NewSample(db, sdb),
		},
	}
	for i, cfg := range configs {
		s.idx[cfg] = sets[i]
	}
	for _, q := range queries {
		if err := q.Validate(db); err != nil {
			return nil, fmt.Errorf("jobench: workload query %s: %w", q.ID, err)
		}
		s.queries[q.ID] = q
		s.order = append(s.order, q.ID)
		s.graphs[q.ID] = query.MustBuildGraph(q)
	}
	return s, nil
}

// Workload returns the name of the workload this system was opened with.
func (s *System) Workload() string { return s.world.Workload }

// World returns the (workload, seed, scale) key of this system.
func (s *System) World() workload.Key { return s.world }

// AddQuery registers a user-defined query from SQL text (the JOB dialect:
// SELECT ... FROM tbl alias, ... WHERE <conjunction of predicates and
// equi-joins>). The query is validated against the schema and becomes
// addressable by id in Optimize, Execute and the cardinality methods.
// AddQuery may run concurrently with the read paths.
func (s *System) AddQuery(id, sql string) error {
	q, err := query.ParseSQL(id, sql)
	if err != nil {
		return err
	}
	if err := q.Validate(s.db); err != nil {
		return err
	}
	g, err := query.BuildGraph(q)
	if err != nil {
		return err
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if _, exists := s.queries[id]; exists {
		return fmt.Errorf("jobench: query %q already exists", id)
	}
	s.queries[id] = q
	s.order = append(s.order, id)
	s.graphs[id] = g
	return nil
}

// ExplainResult reports one instrumented (EXPLAIN ANALYZE) execution:
// the rendered tree plus the structured per-node actuals behind it.
type ExplainResult struct {
	// Text is the plan.ExplainAnalyze rendering with an executed-summary
	// footer.
	Text string
	// Nodes lists every operator in preorder with estimates, actuals,
	// q-error, work units, and wall time.
	Nodes []plan.AnalyzedNode
	// Rows, Work and TimedOut summarise the execution.
	Rows     int64
	Work     int64
	TimedOut bool
}

// ExplainAnalyze optimizes a query, executes it with per-operator stats
// collection, and renders the plan with the optimizer's estimated
// cardinality next to the *measured* cardinality of every operator — the
// classic way to see where estimates collapse, now from real execution
// rather than the truth store.
func (s *System) ExplainAnalyze(queryID string, opts RunOptions) (string, error) {
	res, err := s.ExplainAnalyzeContext(context.Background(), queryID, opts)
	if err != nil {
		return "", err
	}
	return res.Text, nil
}

// ExplainAnalyzeContext is ExplainAnalyze with cancellation and the
// structured result; see OptimizeContext.
func (s *System) ExplainAnalyzeContext(ctx context.Context, queryID string, opts RunOptions) (ExplainResult, error) {
	root, g, err := s.optimizeCtx(ctx, queryID, opts.PlanOptions)
	if err != nil {
		return ExplainResult{}, err
	}
	stats := make([]plan.NodeStats, plan.NumNodes(root))
	sp := trace.StartSpan(ctx, "engine.execute")
	res, err := engine.Run(s.db, s.idx[s.indexConfig(opts.Indexes)], g, root, engine.Config{
		Rehash: opts.Rehash, WorkLimit: opts.WorkLimit, Stats: stats, Ctx: ctx,
	})
	sp.End(trace.String("query", queryID), trace.Int64("work", res.Work),
		trace.Int64("rows", res.Rows), trace.Bool("analyze", true))
	if err != nil && !res.TimedOut {
		return ExplainResult{}, err
	}
	text := plan.ExplainAnalyze(root, g, stats) +
		fmt.Sprintf("executed: %d rows, %d work units (timed out: %v)\n", res.Rows, res.Work, res.TimedOut)
	return ExplainResult{
		Text:     text,
		Nodes:    plan.Analyze(root, g, stats),
		Rows:     res.Rows,
		Work:     res.Work,
		TimedOut: res.TimedOut,
	}, nil
}

// indexConfig clamps a requested physical design to one the system built
// (unknown configs fall back to PKFK, the paper's default).
func (s *System) indexConfig(cfg IndexConfig) IndexConfig {
	if _, ok := s.idx[cfg]; !ok {
		return PKFK
	}
	return cfg
}

// QueryIDs lists the registered queries in family order (the 113 workload
// queries, then any AddQuery registrations in insertion order).
func (s *System) QueryIDs() []string {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// SQL renders a workload query as SQL text.
func (s *System) SQL(queryID string) (string, error) {
	q, err := s.query(queryID)
	if err != nil {
		return "", err
	}
	return q.SQL(), nil
}

// JoinGraphDot renders a query's join graph in Graphviz dot syntax (the
// paper's Fig. 2 for query 13d).
func (s *System) JoinGraphDot(queryID string) (string, error) {
	g, err := s.graph(queryID)
	if err != nil {
		return "", err
	}
	return g.Dot(), nil
}

// TableRows reports the generated table sizes.
func (s *System) TableRows() map[string]int {
	out := make(map[string]int)
	for _, name := range s.db.TableNames() {
		out[name] = s.db.Table(name).NumRows()
	}
	return out
}

func (s *System) query(id string) (*query.Query, error) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	q, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("jobench: unknown query %q (ids run 1a..33c)", id)
	}
	return q, nil
}

func (s *System) graph(id string) (*query.Graph, error) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	g, ok := s.graphs[id]
	if !ok {
		return nil, fmt.Errorf("jobench: unknown query %q (ids run 1a..33c)", id)
	}
	return g, nil
}

func (s *System) model(name string) (costmodel.Model, error) {
	switch name {
	case "", ModelSimple:
		return costmodel.NewSimple(), nil
	case ModelPostgres:
		return costmodel.NewPostgres(), nil
	case ModelTuned:
		return costmodel.NewTuned(), nil
	default:
		return nil, fmt.Errorf("jobench: unknown cost model %q", name)
	}
}

func (s *System) provider(ctx context.Context, queryID, estimator string) (cardest.Provider, error) {
	g, err := s.graph(queryID)
	if err != nil {
		return nil, err
	}
	if estimator == EstTrue {
		st, err := s.truthStore(ctx, queryID)
		if err != nil {
			return nil, err
		}
		return cardest.True{Store: st}, nil
	}
	if estimator == "" {
		estimator = EstPostgres
	}
	est, ok := s.estimators[estimator]
	if !ok {
		return nil, fmt.Errorf("jobench: unknown estimator %q", estimator)
	}
	return est.ForQuery(g), nil
}

// TruthStore computes (and caches) the true cardinality of every
// subexpression of a query. With a snapshot store configured, a
// previously persisted truth store loads from disk instead of being
// recomputed, and fresh computations are persisted for the next Open.
func (s *System) TruthStore(queryID string) (*truecard.Store, error) {
	return s.truthStore(context.Background(), queryID)
}

func (s *System) truthStore(ctx context.Context, queryID string) (*truecard.Store, error) {
	s.truthMu.Lock()
	st, ok := s.truth[queryID]
	s.truthMu.Unlock()
	if ok {
		return st, nil
	}
	g, err := s.graph(queryID)
	if err != nil {
		return nil, err
	}
	// Single-flight per query: a burst of concurrent requests for one
	// uncached truth store runs the (expensive) DP exactly once and shares
	// the result. Errors are not latched — a cancelled or failed
	// computation leaves the next caller free to retry. The span covers
	// the flight wait, so joiners record how long they blocked on the
	// shared computation too.
	sp := trace.StartSpan(ctx, "truecard")
	defer func() { sp.End(trace.String("query", queryID)) }()
	st, err, _ = s.truthFlight.Do(queryID, func() (*truecard.Store, error) {
		s.truthMu.Lock()
		st, ok := s.truth[queryID]
		s.truthMu.Unlock()
		if ok {
			return st, nil
		}
		if s.snap != nil {
			cached, ok := snapshot.Load(s.logf, "jobench: snapshot truth "+queryID,
				func() (*truecard.Store, error) { return s.snap.LoadTruth(g) })
			if ok {
				s.truthMu.Lock()
				s.truth[queryID] = cached
				s.truthMu.Unlock()
				return cached, nil
			}
		}
		st, err := computeTruth(ctx, s.db, g, truecard.Options{Parallel: s.parallel})
		if err != nil {
			return nil, fmt.Errorf("jobench: true cardinalities for %s (row limit %d): %w",
				queryID, truecard.DefaultMaxRows, err)
		}
		if s.snap != nil {
			snapshot.Save(s.logf, "jobench: snapshot save truth "+queryID, func() error {
				return s.snap.SaveTruth(st)
			})
		}
		s.truthMu.Lock()
		s.truth[queryID] = st
		s.truthMu.Unlock()
		return st, nil
	})
	return st, err
}

// Warmup precomputes the true-cardinality store of every registered query
// across the system's worker pool (Options.Parallel). Everything that
// consults the truth afterwards — ExplainAnalyze, TrueCardinality, the
// EstTrue provider — hits the cache.
//
// Each query's DP fans out across the same pool, nesting up to
// Parallel^2 goroutines. That is deliberate: query costs vary by orders
// of magnitude, so late in the sweep a handful of giant queries would
// otherwise hold one core each while the rest idle; the inner fan-out
// soaks up that straggler tail, and idle inner workers cost nothing.
func (s *System) Warmup() error {
	return s.WarmupContext(context.Background())
}

// WarmupContext is Warmup with cancellation: ctx flows into every
// true-cardinality DP, so a cancelled warmup (service shutdown, client
// disconnect) aborts the in-flight computations instead of finishing them
// orphaned.
func (s *System) WarmupContext(ctx context.Context) error {
	_, err := parallel.RunCells(ctx, s.parallel, s.QueryIDs(),
		func(ctx context.Context, qid string) (struct{}, error) {
			// The pool ctx flows into each DP so one query's failure also
			// cancels the sibling computations already in flight.
			_, err := s.truthStore(ctx, qid)
			return struct{}{}, err
		})
	return err
}

// TrueCardinality returns the exact result size of a workload query.
func (s *System) TrueCardinality(queryID string) (float64, error) {
	st, err := s.TruthStore(queryID)
	if err != nil {
		return 0, err
	}
	g, err := s.graph(queryID)
	if err != nil {
		return 0, err
	}
	v, _ := st.Card(query.FullSet(g.N))
	return v, nil
}

// EstimateCardinality returns an estimator's prediction of a query's result
// size.
func (s *System) EstimateCardinality(queryID, estimator string) (float64, error) {
	return s.EstimateCardinalityContext(context.Background(), queryID, estimator)
}

// EstimateCardinalityContext is EstimateCardinality with cancellation: ctx
// bounds the on-demand true-cardinality DP when estimator is EstTrue.
func (s *System) EstimateCardinalityContext(ctx context.Context, queryID, estimator string) (float64, error) {
	g, err := s.graph(queryID)
	if err != nil {
		return 0, err
	}
	prov, err := s.provider(ctx, queryID, estimator)
	if err != nil {
		return 0, err
	}
	return prov.Card(query.FullSet(g.N)), nil
}

// Optimize plans a query and returns its EXPLAIN rendering plus estimated
// cost.
func (s *System) Optimize(queryID string, opts PlanOptions) (string, float64, error) {
	return s.OptimizeContext(context.Background(), queryID, opts)
}

// OptimizeContext is Optimize with cancellation: ctx bounds the on-demand
// true-cardinality DP the EstTrue provider may trigger (the service hands
// the request context in, so a client disconnect or shutdown aborts it).
func (s *System) OptimizeContext(ctx context.Context, queryID string, opts PlanOptions) (string, float64, error) {
	root, g, err := s.optimizeCtx(ctx, queryID, opts)
	if err != nil {
		return "", 0, err
	}
	return plan.Explain(root, g), root.ECost, nil
}

func (s *System) optimizeCtx(ctx context.Context, queryID string, opts PlanOptions) (*plan.Node, *query.Graph, error) {
	g, err := s.graph(queryID)
	if err != nil {
		return nil, nil, err
	}
	prov, err := s.provider(ctx, queryID, opts.Estimator)
	if err != nil {
		return nil, nil, err
	}
	model, err := s.model(opts.CostModel)
	if err != nil {
		return nil, nil, err
	}
	o := &optimizer.Optimizer{
		DB:         s.db,
		Model:      model,
		Indexes:    s.idx[s.indexConfig(opts.Indexes)],
		DisableNLJ: opts.DisableNestedLoops,
		Shape:      opts.Shape,
		Algorithm:  opts.Algorithm,
		Seed:       opts.Seed,
	}
	sp := trace.StartSpan(ctx, "optimize")
	root, err := o.Optimize(g, prov)
	sp.End(trace.String("query", queryID))
	if err != nil {
		return nil, nil, err
	}
	return root, g, nil
}

// Execute optimizes and runs a query.
func (s *System) Execute(queryID string, opts RunOptions) (Result, error) {
	return s.ExecuteContext(context.Background(), queryID, opts)
}

// ExecuteContext is Execute with cancellation; see OptimizeContext.
func (s *System) ExecuteContext(ctx context.Context, queryID string, opts RunOptions) (Result, error) {
	root, g, err := s.optimizeCtx(ctx, queryID, opts.PlanOptions)
	if err != nil {
		return Result{}, err
	}
	sp := trace.StartSpan(ctx, "engine.execute")
	res, err := engine.Run(s.db, s.idx[s.indexConfig(opts.Indexes)], g, root, engine.Config{
		Rehash:    opts.Rehash,
		WorkLimit: opts.WorkLimit,
		Ctx:       ctx,
	})
	sp.End(trace.String("query", queryID), trace.Int64("work", res.Work),
		trace.Int64("rows", res.Rows), trace.Bool("timed_out", res.TimedOut))
	out := Result{
		Rows:     res.Rows,
		Work:     res.Work,
		TimedOut: res.TimedOut,
		Plan:     plan.Explain(root, g),
	}
	if err != nil && !res.TimedOut {
		return out, err
	}
	return out, nil
}
