package jobench_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"jobench"
)

var (
	sysOnce sync.Once
	sys     *jobench.System
	sysErr  error
)

func system(t *testing.T) *jobench.System {
	t.Helper()
	sysOnce.Do(func() {
		sys, sysErr = jobench.Open(jobench.Options{Scale: 0.05, Seed: 7})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sys
}

func TestOpenAndInventory(t *testing.T) {
	s := system(t)
	if got := len(s.QueryIDs()); got != 113 {
		t.Fatalf("workload has %d queries, want 113", got)
	}
	rows := s.TableRows()
	if len(rows) != 21 {
		t.Fatalf("%d tables, want 21", len(rows))
	}
	if rows["cast_info"] < rows["title"] {
		t.Fatal("cast_info should dominate title")
	}
}

func TestSQLAndGraph(t *testing.T) {
	s := system(t)
	sql, err := s.SQL("13d")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"company_name cn", "production companies", "mi.movie_id = t.id"} {
		if !strings.Contains(sql, want) {
			t.Errorf("13d SQL missing %q", want)
		}
	}
	dot, err := s.JoinGraphDot("13d")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "mc -- t") && !strings.Contains(dot, "t -- mc") {
		t.Errorf("13d graph missing mc-t edge:\n%s", dot)
	}
	if _, err := s.SQL("99z"); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestEstimateVsTruth(t *testing.T) {
	s := system(t)
	truth, err := s.TrueCardinality("3b")
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateCardinality("3b", jobench.EstPostgres)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1 {
		t.Fatalf("estimate %g below one row", est)
	}
	tru, err := s.EstimateCardinality("3b", jobench.EstTrue)
	if err != nil {
		t.Fatal(err)
	}
	if tru != truth {
		t.Fatalf("EstTrue (%g) != TrueCardinality (%g)", tru, truth)
	}
	if _, err := s.EstimateCardinality("3b", "bogus"); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestOptimizeAndExecuteAgree(t *testing.T) {
	s := system(t)
	truth, err := s.TrueCardinality("1a")
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range []string{jobench.EstPostgres, jobench.EstDBMSB, jobench.EstTrue} {
		res, err := s.Execute("1a", jobench.RunOptions{
			PlanOptions: jobench.PlanOptions{
				Estimator:          est,
				Indexes:            jobench.PKOnly,
				DisableNestedLoops: true,
			},
			Rehash: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", est, err)
		}
		if res.Rows != int64(truth) {
			t.Errorf("%s: %d rows, want %.0f (plans must not change results)", est, res.Rows, truth)
		}
		if res.Plan == "" || res.Work <= 0 {
			t.Errorf("%s: empty plan or work", est)
		}
	}
}

func TestExecuteWorkLimit(t *testing.T) {
	s := system(t)
	res, err := s.Execute("1a", jobench.RunOptions{
		PlanOptions: jobench.PlanOptions{DisableNestedLoops: true},
		WorkLimit:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("10-unit work limit not hit")
	}
}

func TestPlanOptionsValidation(t *testing.T) {
	s := system(t)
	if _, _, err := s.Optimize("1a", jobench.PlanOptions{CostModel: "bogus"}); err == nil {
		t.Fatal("unknown cost model accepted")
	}
	if _, _, err := s.Optimize("1a", jobench.PlanOptions{Estimator: "bogus"}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
	if _, err := s.Execute("nope", jobench.RunOptions{}); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestCostModelsProduceDifferentPlansOrCosts(t *testing.T) {
	s := system(t)
	_, c1, err := s.Optimize("13d", jobench.PlanOptions{CostModel: jobench.ModelSimple, DisableNestedLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := s.Optimize("13d", jobench.PlanOptions{CostModel: jobench.ModelPostgres, DisableNestedLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("simple and postgres cost models returned identical costs")
	}
}

func TestAddQueryAndExplainAnalyze(t *testing.T) {
	s := system(t)
	err := s.AddQuery("custom1", `
		SELECT COUNT(*)
		FROM title t, movie_info mi, info_type it
		WHERE it.info = 'genres'
		  AND mi.info = 'Horror'
		  AND t.production_year > 2000
		  AND mi.movie_id = t.id
		  AND it.id = mi.info_type_id`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute("custom1", jobench.RunOptions{
		PlanOptions: jobench.PlanOptions{DisableNestedLoops: true},
		Rehash:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := s.TrueCardinality("custom1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != int64(truth) {
		t.Fatalf("custom query: %d rows, true %.0f", res.Rows, truth)
	}

	// Duplicates and invalid SQL are rejected.
	if err := s.AddQuery("custom1", "SELECT * FROM title t"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := s.AddQuery("bad1", "SELECT * FROM nonexistent n"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := s.AddQuery("bad2", "this is not sql"); err == nil {
		t.Fatal("garbage accepted")
	}
	// Disconnected join graphs are invalid, as in JOB.
	if err := s.AddQuery("bad3", "SELECT * FROM title t, keyword k"); err == nil {
		t.Fatal("cross product accepted")
	}

	out, err := s.ExplainAnalyze("custom1", jobench.RunOptions{
		PlanOptions: jobench.PlanOptions{DisableNestedLoops: true},
		Rehash:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"est", "actual", "q-err", "work", "executed:"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeActualsMatchTruth pins EXPLAIN ANALYZE's measured
// per-operator cardinalities against the true-cardinality DP: every
// operator's actual row count must equal the truth store's value for its
// relation set — the engine-side half of the paper's estimated-vs-true
// comparison.
func TestExplainAnalyzeActualsMatchTruth(t *testing.T) {
	s := system(t)
	for _, qid := range []string{"1a", "6a", "13d"} {
		res, err := s.ExplainAnalyzeContext(context.Background(), qid, jobench.RunOptions{
			PlanOptions: jobench.PlanOptions{DisableNestedLoops: true},
			Rehash:      true,
		})
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		st, err := s.TruthStore(qid)
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		if len(res.Nodes) == 0 {
			t.Fatalf("%s: no analyzed nodes", qid)
		}
		for _, n := range res.Nodes {
			truth, ok := st.Card(n.Set)
			if !ok {
				t.Fatalf("%s node %d (%s): truth store has no cardinality for %v", qid, n.ID, n.Op, n.Set)
			}
			if n.ActualRows != int64(truth) {
				t.Errorf("%s node %d (%s): actual %d rows, truth %.0f", qid, n.ID, n.Op, n.ActualRows, truth)
			}
		}
	}
}
