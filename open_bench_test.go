// Benchmarks proving the snapshot store's speedup rather than asserting
// it: BenchmarkOpenCold regenerates the database, statistics, and a slice
// of true cardinalities from scratch every iteration; BenchmarkOpenWarm
// does the identical work against a primed cache directory, so the ratio
// between the two is the cache's value. Both are skipped under -short
// (they open full systems) and run once in CI's bench-smoke pass.
package jobench_test

import (
	"testing"

	"jobench"
)

var openBenchQueries = []string{"1a", "6a", "13d"}

func openAndWarm(b *testing.B, opts jobench.Options) {
	b.Helper()
	sys, err := jobench.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, qid := range openBenchQueries {
		if _, err := sys.TruthStore(qid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenCold(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode: cold open regenerates the full data set")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		openAndWarm(b, jobench.Options{Scale: 0.05, Seed: 7})
	}
}

func BenchmarkOpenWarm(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode: warm open still opens a full system")
	}
	dir := b.TempDir()
	opts := jobench.Options{Scale: 0.05, Seed: 7, CacheDir: dir}
	openAndWarm(b, opts) // prime the cache outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		openAndWarm(b, opts)
	}
}
