package jobench_test

// End-to-end coverage of the workload registry through the public facade:
// every registered workload opens, plans, and executes, and a replan-free
// adaptive run on tpch costs exactly what the static pipeline costs — the
// acceptance bar for threading workloads through the reopt layer.

import (
	"testing"

	"jobench"
)

func TestOpenEveryWorkload(t *testing.T) {
	for _, tc := range []struct {
		workload string
		query    string
	}{
		{"imdb", "13d"},
		{"imdb-skew", "13d"},
		{"tpch", "tpch5"},
	} {
		t.Run(tc.workload, func(t *testing.T) {
			s, err := jobench.Open(jobench.Options{Workload: tc.workload, Scale: 0.05, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Workload(); got != tc.workload {
				t.Fatalf("Workload() = %q, want %q", got, tc.workload)
			}
			if s.World().Seed != 7 || s.World().Scale != 0.05 {
				t.Fatalf("World() = %+v, want seed 7 scale 0.05", s.World())
			}
			res, err := s.Execute(tc.query, jobench.RunOptions{
				PlanOptions: jobench.PlanOptions{DisableNestedLoops: true},
				Rehash:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Work == 0 {
				t.Fatal("execution did no work")
			}
		})
	}
	if _, err := jobench.Open(jobench.Options{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestTPCHAdaptiveParityWithStatic: with a q-error threshold high enough
// that no replan ever fires, an adaptive tpch execution must do exactly the
// work of the static pipeline — adaptivity that changes nothing must cost
// nothing.
func TestTPCHAdaptiveParityWithStatic(t *testing.T) {
	open := func() *jobench.System {
		s, err := jobench.Open(jobench.Options{Workload: "tpch", Scale: 0.05, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	run := jobench.RunOptions{
		PlanOptions: jobench.PlanOptions{DisableNestedLoops: true},
		Rehash:      true,
	}
	for _, qid := range []string{"tpch3", "tpch5", "tpch10"} {
		// Fresh systems so the adaptive run's feedback cache cannot leak
		// observations into the static run (or across query ids).
		static, err := open().Execute(qid, run)
		if err != nil {
			t.Fatalf("%s static: %v", qid, err)
		}
		ares, err := open().ExecuteAdaptive(qid, jobench.AdaptiveOptions{
			RunOptions:    run,
			QErrThreshold: 1e12, // nothing misestimates this badly
		})
		if err != nil {
			t.Fatalf("%s adaptive: %v", qid, err)
		}
		if ares.Replans != 0 {
			t.Fatalf("%s: %d replans under an unreachable threshold", qid, ares.Replans)
		}
		if ares.Rows != static.Rows {
			t.Fatalf("%s: adaptive rows %d != static rows %d", qid, ares.Rows, static.Rows)
		}
		if ares.Work != static.Work {
			t.Fatalf("%s: replan-free adaptive work %d != static work %d",
				qid, ares.Work, static.Work)
		}
	}
}
